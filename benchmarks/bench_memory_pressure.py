"""Multi-model serving under a store-wide memory budget, and
concurrent cold reads through the buffer pool's in-flight guards.

Arm 1 — **budgeted multi-model serving**: two fingerprint-*distinct*
models (same architecture, different fitted weights, so they cannot
share a cache) are registered on one service whose ``memory_budget``
is half their combined partial working set.  The store's cross-cache
eviction must keep global ``bytes_resident`` within the budget for the
whole run while every prediction stays bit-exact against an
unbudgeted deployment — graceful degradation to recomputation, not
OOM-style thrash and not wrong answers.

Arm 2 — **concurrent cold reads**: several threads fault in disjoint
cold pages through one ``BufferPool``.  With the old
read-under-the-pool-lock design at most one page read could ever be in
flight; the per-page in-flight guards must show >1 (``inflight_peak``)
and beat a deliberately serialized control arm on wall time.

Arm 3 — **tier degradation curve**: the cost of re-acquiring one GMM
partial row from each rung of the store's tier ladder, measured with
the real miss path (dimension-page gather through a deliberately
small buffer pool, then the quadratic-form rebuild) as the recompute
floor.  Every row of a working set is staged into exactly one tier —
resident, float32-compressed, spilled to disk — and one full pass of
``get_many`` over a shuffled RID order is timed per tier.  The curve
is the tentpole claim of the tiered store: demotion buys a *gradual*
throughput slope down the ladder instead of a cliff from resident
straight to gather+rebuild.

Acceptance: budgeted ``bytes_resident`` ≤ budget with bit-exact
outputs and cross-cache evictions observed; cold-read
``inflight_peak`` > 1 where the serialized control shows exactly 1;
the degradation curve is monotone (resident fastest, recompute
slowest), the spilled tier serves ≥ 2× the recompute throughput,
spilled rows promote bit-exactly, float32 rows within
``FLOAT32_SCORE_RTOL``, and a tiered half-budget deployment keeps
every GMM label bit-exact.
"""

import sys
import threading
import time
import warnings

import numpy as np

from _payload import write_payload
from repro.bench.experiments import active_scale
from repro.core.api import fit_gmm, fit_nn
from repro.data.synthetic import StarSchemaConfig, generate_star
from repro.fx.store import PartialStore
from repro.fx.tiers import FLOAT32_SCORE_RTOL
from repro.serve.predictor import FactorizedGMMPredictor
from repro.serve.service import ModelService
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Database
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStats

D_S, D_R = 5, 15
N_H = 32
REQUEST_ROWS = 256
REQUESTS = 40

COLD_PAGES = 64
COLD_READERS = 4
READ_STALL_S = 0.002     # emulated device latency per page read

# Tier degradation curve: sized so the dimension relation dwarfs the
# buffer pool (~550 pages vs 64) — recompute then pays real random
# page gather, the regime tiering exists for.  Fixed, not scaled by
# REPRO_BENCH_SCALE: shrinking it would fit the pool and measure
# nothing.
CURVE_N_R = 8192
CURVE_D_S, CURVE_D_R = 5, 31
CURVE_COMPONENTS = 4
CURVE_POOL_PAGES = 64
CURVE_CHUNK = 256


def _workload(rng, n_s):
    """A stream of skewed request batches over the stored fact rows."""
    return [
        np.sort(rng.integers(0, n_s, size=REQUEST_ROWS))
        for _ in range(REQUESTS)
    ]


def _serve_arm(db, spec, models, *, memory_budget=None):
    """Register both models, push the workload, watch residency."""
    fact = spec.resolve(db).fact
    all_rows = fact.scan()
    features_all = fact.project_features(all_rows)
    fk_all = all_rows[:, fact.schema.fk_position("R1")].astype(np.int64)

    service = ModelService(db, memory_budget=memory_budget)
    for name, model in models.items():
        service.register_nn(name, model, spec)
    rng = np.random.default_rng(17)
    outputs = []
    peak_bytes = 0
    tick = time.perf_counter()
    for name in models:
        for batch in _workload(rng, features_all.shape[0]):
            outputs.append(
                service.predict(name, features_all[batch], fk_all[batch])
            )
            peak_bytes = max(peak_bytes, service.store.bytes_resident)
    elapsed = time.perf_counter() - tick
    stats = service.store_stats()
    service.close()
    return {
        "outputs": np.concatenate(outputs),
        "bytes": stats.bytes_resident,
        "peak_bytes": peak_bytes,
        "cross_evictions": stats.cross_evictions,
        "hit_rate": stats.cache.hit_rate,
        "seconds": elapsed,
        "rows_per_sec": len(models) * REQUESTS * REQUEST_ROWS / elapsed,
    }


def run_memory_pressure():
    scale = active_scale()
    n_r = scale.n_r
    n_s = n_r * scale.rr_fixed
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with Database() as db:
            star = generate_star(
                db,
                StarSchemaConfig.binary(
                    n_s=n_s, n_r=n_r, d_s=D_S, d_r=D_R,
                    with_target=True, seed=5,
                ),
            )
            models = {
                "blue": fit_nn(
                    db, star.spec, hidden_sizes=(N_H,),
                    epochs=scale.nn_epochs, seed=1,
                ),
                "green": fit_nn(
                    db, star.spec, hidden_sizes=(N_H,),
                    epochs=scale.nn_epochs, seed=2,
                ),
            }
            unbounded = _serve_arm(db, star.spec, models)
            # Half of the two models' combined fully-resident partials.
            budget = unbounded["bytes"] // 2
            governed = _serve_arm(
                db, star.spec, models, memory_budget=budget
            )
    return {
        "scale": scale.name, "n_s": n_s, "n_r": n_r, "budget": budget,
        "unbounded": unbounded, "governed": governed,
    }


def _timed_pass(cache, builder_fn, order, width):
    """One full ``get_many`` pass over ``order`` (shuffled RIDs) in
    request-sized chunks; returns (rows in RID order, rows/sec)."""
    full = np.empty((order.size, width))
    tick = time.perf_counter()
    for start in range(0, order.size, CURVE_CHUNK):
        keys = np.sort(order[start:start + CURVE_CHUNK])
        full[keys] = cache.get_many(keys, builder_fn)
    elapsed = time.perf_counter() - tick
    return full, order.size / elapsed


def _curve_point(db, spec, model, order, tier):
    """Throughput of re-acquiring every partial row from one tier.

    The row set is staged into exactly the named tier first —
    ``_demote`` walks a row one rung down the ladder by definition, so
    one call per row lands the whole set on the rung under test
    without the governor's cascade mixing tiers.
    """
    store = PartialStore(
        capacity_floats=1 << 28,
        tiers=() if tier in ("resident", "recomputed") else (tier,),
    )
    predictor = FactorizedGMMPredictor(db, spec, model, store=store)
    cache = predictor.caches[0]
    builder, lookup = predictor.builders[0], predictor.lookups[0]

    def builder_fn(keys):
        return builder.compute(lookup.features_for(keys))

    truth, _ = _timed_pass(cache, builder_fn, order, builder.width)
    if tier == "recomputed":
        cache.clear()                 # every access is gather+rebuild
    elif tier != "resident":
        for shard in cache.shards:    # stage every row one rung down
            with shard._lock:
                for key in list(shard._rows):
                    shard._demote(key)
    rows, rows_per_sec = _timed_pass(cache, builder_fn, order, builder.width)
    promoted = sum(shard.promotions_total for shard in cache.shards)
    store.close()
    return {
        "rows": rows, "truth": truth, "rows_per_sec": rows_per_sec,
        "promoted": promoted,
    }


def run_degradation_curve():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with Database(buffer_pages=CURVE_POOL_PAGES) as db:
            star = generate_star(
                db,
                StarSchemaConfig.binary(
                    n_s=CURVE_N_R * 2, n_r=CURVE_N_R,
                    d_s=CURVE_D_S, d_r=CURVE_D_R,
                    with_target=True, seed=5,
                ),
            )
            gmm = fit_gmm(
                db, star.spec, n_components=CURVE_COMPONENTS,
                max_iter=2, seed=1,
            )
            model = getattr(gmm, "model", gmm)
            order = np.random.default_rng(11).permutation(CURVE_N_R)
            points = {
                tier: _curve_point(db, star.spec, model, order, tier)
                for tier in ("resident", "float32", "spill", "recomputed")
            }

            # Labels end to end: a full-ladder deployment at half the
            # working set must agree with an unbounded one bit-exactly.
            fact = star.spec.resolve(db).fact
            all_rows = fact.scan()
            features = fact.project_features(all_rows)
            fks = all_rows[:, fact.schema.fk_position("R1")].astype(np.int64)
            rng = np.random.default_rng(17)
            batches = [
                np.sort(rng.integers(0, features.shape[0], size=REQUEST_ROWS))
                for _ in range(REQUESTS // 2)
            ]

            def labels_arm(budget, tiers):
                service = ModelService(
                    db, memory_budget=budget, store_tiers=tiers
                )
                service.register_gmm("g", model, star.spec)
                outs = [
                    service.predict("g", features[b], fks[b])
                    for b in batches
                ]
                bytes_resident = service.store.bytes_resident
                service.close()
                return np.concatenate(outs), bytes_resident

            unbounded_labels, working_set = labels_arm(None, ())
            tiered_labels, _ = labels_arm(
                working_set // 2, ("float32", "spill")
            )
    return {
        "points": points, "order": order,
        "unbounded_labels": unbounded_labels,
        "tiered_labels": tiered_labels,
        "working_set": working_set,
    }


def test_memory_pressure_degradation_curve(benchmark, results_dir):
    result = benchmark.pedantic(
        run_degradation_curve, rounds=1, iterations=1
    )
    points = result["points"]
    truth = points["resident"]["truth"]

    # The exactness contract, tier by tier: spilled rows round-trip
    # the exact float64 bytes; float32 rows stay within the documented
    # bound; staged tiers actually promoted (nothing recomputed).
    np.testing.assert_array_equal(points["spill"]["rows"], truth)
    np.testing.assert_allclose(
        points["float32"]["rows"], truth, rtol=FLOAT32_SCORE_RTOL
    )
    assert points["float32"]["promoted"] == CURVE_N_R
    assert points["spill"]["promoted"] == CURVE_N_R
    np.testing.assert_array_equal(
        result["tiered_labels"], result["unbounded_labels"]
    )

    # The curve itself: monotone down the ladder, no cliff — the
    # spilled tier still serves at least twice the recompute floor.
    rps = {tier: point["rows_per_sec"] for tier, point in points.items()}
    assert rps["resident"] > rps["float32"] > rps["recomputed"]
    assert rps["spill"] > rps["recomputed"]
    assert rps["spill"] >= 2 * rps["recomputed"]

    lines = [
        "== tier degradation curve: rows/sec re-acquiring one partial "
        "per tier ==",
        f"{'tier':>10}  {'rows/sec':>10}  {'vs recompute':>12}",
    ]
    for tier in ("resident", "float32", "spill", "recomputed"):
        lines.append(
            f"{tier:>10}  {rps[tier]:>10,.0f}  "
            f"{rps[tier] / rps['recomputed']:>11.1f}x"
        )
    lines.append(
        f"   {CURVE_N_R} RIDs x {CURVE_COMPONENTS} components, "
        f"d_R={CURVE_D_R}, pool={CURVE_POOL_PAGES} pages; labels "
        "bit-exact at half working-set budget on the float32+spill "
        "ladder"
    )
    text = "\n".join(lines)
    sys.__stdout__.write("\n" + text + "\n")
    with open(results_dir / "memory_degradation.txt", "w") as handle:
        handle.write(text + "\n")
    write_payload(
        results_dir,
        "memory_degradation",
        {
            "n_r": CURVE_N_R, "d_r": CURVE_D_R,
            "components": CURVE_COMPONENTS,
            "pool_pages": CURVE_POOL_PAGES,
            "working_set_bytes": result["working_set"],
        },
        {
            "tiers": {
                tier: {"rows_per_sec": point["rows_per_sec"]}
                for tier, point in points.items()
            },
            "spill_speedup_vs_recompute": (
                rps["spill"] / rps["recomputed"]
            ),
        },
    )


class _StallingHeap(HeapFile):
    """A heap whose reads sleep like a device with real latency, so
    thread overlap (or its absence) dominates the measurement."""

    def read_page(self, page_no):
        time.sleep(READ_STALL_S)
        return super().read_page(page_no)


def _cold_scan(pool, heap, *, serialize):
    """Fault COLD_PAGES disjoint pages through ``pool`` from
    COLD_READERS threads; optionally serialize reads like the old
    read-under-the-lock pool did."""
    gate = threading.Lock()

    def reader(pages):
        for page_no in pages:
            if serialize:
                with gate:
                    pool.get_page(heap, page_no)
            else:
                pool.get_page(heap, page_no)

    threads = [
        threading.Thread(target=reader, args=(range(i, COLD_PAGES, COLD_READERS),))
        for i in range(COLD_READERS)
    ]
    tick = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - tick
    return {"seconds": elapsed, "inflight_peak": pool.inflight_peak,
            "misses": pool.misses}


def run_cold_reads(tmp_path):
    stats = IOStats()
    heap = _StallingHeap.create(
        tmp_path / "cold.tbl", 4, page_size_bytes=256, stats=stats
    )  # 8 rows per page
    rng = np.random.default_rng(11)
    heap.append(rng.normal(size=(COLD_PAGES * 8, 4)))
    serialized = _cold_scan(
        BufferPool(COLD_PAGES), heap, serialize=True
    )
    guarded = _cold_scan(
        BufferPool(COLD_PAGES), heap, serialize=False
    )
    return {"serialized": serialized, "guarded": guarded}


def test_memory_pressure_budget(benchmark, results_dir):
    result = benchmark.pedantic(run_memory_pressure, rounds=1, iterations=1)
    unbounded, governed = result["unbounded"], result["governed"]

    # Bit-exact predictions under half-working-set pressure.
    np.testing.assert_array_equal(
        governed["outputs"], unbounded["outputs"]
    )
    # The budget held at every observation point, and pressure showed
    # up as cross-cache evictions, not as failures.
    assert governed["peak_bytes"] <= result["budget"]
    assert governed["bytes"] <= result["budget"]
    assert governed["cross_evictions"] > 0
    assert unbounded["cross_evictions"] == 0

    lines = [
        "== memory pressure: two fingerprint-distinct models, "
        "budget = half their working set ==",
        f"{'arm':>9}  {'peak bytes':>10}  {'final bytes':>11}  "
        f"{'x-evict':>7}  {'hit rate':>8}  {'wall (s)':>8}",
    ]
    for arm_name, arm in (("unbounded", unbounded), ("governed", governed)):
        lines.append(
            f"{arm_name:>9}  {arm['peak_bytes']:>10,}  {arm['bytes']:>11,}  "
            f"{arm['cross_evictions']:>7}  {arm['hit_rate']:>8.1%}  "
            f"{arm['seconds']:>8.3f}"
        )
    lines.append(
        f"   budget={result['budget']:,} bytes; n_S={result['n_s']}, "
        f"n_R={result['n_r']}, n_h={N_H}; scale={result['scale']}; "
        "bit-exact outputs under the budget"
    )
    text = "\n".join(lines)
    sys.__stdout__.write("\n" + text + "\n")
    with open(results_dir / "memory_pressure.txt", "w") as handle:
        handle.write(text + "\n")
    # Machine-readable twin: tools/bench_summary.py folds this into the
    # checked-in BENCH_memory.json history.
    write_payload(
        results_dir,
        "memory_pressure",
        {
            "scale": result["scale"], "n_s": result["n_s"],
            "n_r": result["n_r"], "n_h": N_H,
            "budget_bytes": result["budget"],
        },
        {
            "arms": {
                name: {
                    k: v for k, v in arm.items() if k != "outputs"
                }
                for name, arm in (
                    ("unbounded", unbounded), ("governed", governed),
                )
            },
        },
    )


def test_concurrent_cold_reads(benchmark, results_dir, tmp_path):
    result = benchmark.pedantic(
        run_cold_reads, args=(tmp_path,), rounds=1, iterations=1
    )
    serialized, guarded = result["serialized"], result["guarded"]

    # The old design's invariant (one read in flight, ever) vs the
    # in-flight-guard pool actually overlapping its cold misses.
    assert serialized["inflight_peak"] == 1
    assert guarded["inflight_peak"] > 1
    assert guarded["misses"] == COLD_PAGES
    assert guarded["seconds"] < serialized["seconds"]

    lines = [
        "== concurrent cold reads: in-flight guards vs serialized pool ==",
        f"{'arm':>10}  {'inflight peak':>13}  {'wall (s)':>8}",
        f"{'serialized':>10}  {serialized['inflight_peak']:>13}  "
        f"{serialized['seconds']:>8.3f}",
        f"{'guarded':>10}  {guarded['inflight_peak']:>13}  "
        f"{guarded['seconds']:>8.3f}",
        f"   {COLD_PAGES} cold pages, {COLD_READERS} reader threads, "
        f"{READ_STALL_S * 1000:.0f} ms emulated device latency; "
        f"speedup {serialized['seconds'] / guarded['seconds']:.1f}x",
    ]
    text = "\n".join(lines)
    sys.__stdout__.write("\n" + text + "\n")
    with open(results_dir / "concurrent_cold_reads.txt", "w") as handle:
        handle.write(text + "\n")
