"""Telemetry overhead guard: enabled vs disabled serving, A/B'd.

The observability layer promises near-zero cost when off and small,
bounded cost when on (``docs/observability.md``).  This bench holds it
to that: the same request stream runs through two identically
configured concurrent runtimes — one with ``telemetry=True`` (metrics,
spans, collectors all live), one with the module-level no-op telemetry
— in interleaved rounds so CPU-frequency drift and cache warmth hit
both arms alike.

Acceptance: the enabled arm's wall time stays within
``MAX_OVERHEAD`` (5%) of the disabled arm's, and predictions are
bit-exact between arms.  The nightly job runs this module both inside
the full suite and as a named step, so an overhead regression fails
CI with this file in the summary line.
"""

import sys
import time
import warnings

import numpy as np

from _payload import write_payload
from repro.bench.experiments import active_scale
from repro.core.api import fit_nn, serve_runtime
from repro.data.synthetic import StarSchemaConfig, generate_star
from repro.storage.catalog import Database

D_S, D_R = 5, 15
N_H = 32
REQUEST_ROWS = 64
REQUESTS_PER_ROUND = 32
ROUNDS = 6          # interleaved A/B rounds, first round is warmup
MAX_OVERHEAD = 1.05


def _round(runtime, xs, fks):
    """Push one round of point batches through ``runtime``; return
    (wall seconds, stacked outputs)."""
    tick = time.perf_counter()
    futures = [
        runtime.submit("m", xs[i], fks[i])
        for i in range(REQUESTS_PER_ROUND)
    ]
    outputs = [future.result() for future in futures]
    return time.perf_counter() - tick, np.concatenate(outputs)


def run_overhead():
    scale = active_scale()
    n_r = scale.n_r
    n_s = n_r * scale.rr_fixed
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with Database() as db:
            star = generate_star(
                db,
                StarSchemaConfig.binary(
                    n_s=n_s, n_r=n_r, d_s=D_S, d_r=D_R,
                    with_target=True, seed=5,
                ),
            )
            nn = fit_nn(
                db, star.spec, hidden_sizes=(N_H,),
                epochs=scale.nn_epochs, seed=1,
            )
            rng = np.random.default_rng(23)
            xs = rng.normal(size=(REQUESTS_PER_ROUND, REQUEST_ROWS, D_S))
            fks = rng.integers(
                0, n_r, size=(REQUESTS_PER_ROUND, REQUEST_ROWS, 1)
            )

            arms = {}
            for name, telemetry in (("off", None), ("on", True)):
                arms[name] = serve_runtime(
                    db, num_workers=2, telemetry=telemetry
                )
                arms[name].register_nn("m", nn, star.spec)

            seconds = {"off": [], "on": []}
            outputs = {}
            try:
                for round_no in range(ROUNDS):
                    # Alternate which arm goes first within the round.
                    order = ("off", "on") if round_no % 2 else ("on", "off")
                    for name in order:
                        elapsed, out = _round(arms[name], xs, fks)
                        if round_no > 0:     # round 0 warms both arms
                            seconds[name].append(elapsed)
                        outputs[name] = out
            finally:
                for runtime in arms.values():
                    runtime.close()
    return {
        "scale": scale.name, "n_s": n_s, "n_r": n_r,
        "off_s": sum(seconds["off"]), "on_s": sum(seconds["on"]),
        "outputs_off": outputs["off"], "outputs_on": outputs["on"],
    }


def test_telemetry_overhead(benchmark, results_dir):
    result = benchmark.pedantic(run_overhead, rounds=1, iterations=1)

    # Telemetry must never change predictions.
    np.testing.assert_array_equal(
        result["outputs_on"], result["outputs_off"]
    )
    ratio = result["on_s"] / result["off_s"]
    assert ratio <= MAX_OVERHEAD, (
        f"telemetry-enabled serving took {ratio:.3f}x the disabled "
        f"arm's wall time (limit {MAX_OVERHEAD}x)"
    )

    lines = [
        "== telemetry overhead: enabled vs disabled runtime, "
        "interleaved A/B ==",
        f"{'arm':>4}  {'wall (s)':>9}",
        f"{'off':>4}  {result['off_s']:>9.3f}",
        f"{'on':>4}  {result['on_s']:>9.3f}",
        f"   ratio {ratio:.3f}x (limit {MAX_OVERHEAD}x); "
        f"{ROUNDS - 1} measured rounds x {REQUESTS_PER_ROUND} requests "
        f"x {REQUEST_ROWS} rows; bit-exact outputs; "
        f"scale={result['scale']}",
    ]
    text = "\n".join(lines)
    sys.__stdout__.write("\n" + text + "\n")
    with open(results_dir / "telemetry_overhead.txt", "w") as handle:
        handle.write(text + "\n")
    # Machine-readable twin: tools/bench_summary.py folds this into
    # the checked-in BENCH_overhead.json history.
    write_payload(
        results_dir,
        "telemetry_overhead",
        {"scale": result["scale"], "n_s": result["n_s"],
         "n_r": result["n_r"], "n_h": N_H, "rounds": ROUNDS,
         "requests_per_round": REQUESTS_PER_ROUND,
         "request_rows": REQUEST_ROWS},
        {"off_s": result["off_s"], "on_s": result["on_s"],
         "ratio": ratio},
    )
