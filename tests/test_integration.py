"""End-to-end integration: generated data → joins → training → models
that actually learn, across execution strategies and join arities."""

import warnings

import numpy as np
import pytest

import repro
from repro.core.api import FACTORIZED


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


class TestGMMPipeline:
    def test_cluster_recovery_through_public_api(self, tmp_path):
        """The generator plants mixture structure; F-GMM must find a
        model that out-scores a single-Gaussian fit."""
        with repro.Database(tmp_path / "db") as db:
            star = repro.generate_star(
                db,
                repro.StarSchemaConfig.binary(
                    n_s=2000, n_r=50, d_s=3, d_r=4, n_clusters=3,
                    cluster_spread=6.0, seed=2,
                ),
            )
            multi = repro.fit_gmm(
                db, star.spec, n_components=3, max_iter=15, tol=1e-5,
                seed=1,
            )
            single = repro.fit_gmm(
                db, star.spec, n_components=1, max_iter=15, tol=1e-5,
                seed=1,
            )
            assert (
                multi.log_likelihood_history[-1]
                > single.log_likelihood_history[-1]
            )

    def test_model_scores_joined_data(self, tmp_path):
        with repro.Database(tmp_path / "db") as db:
            star = repro.generate_star(
                db,
                repro.StarSchemaConfig.binary(
                    n_s=500, n_r=20, d_s=2, d_r=3, seed=3
                ),
            )
            result = repro.fit_gmm(
                db, star.spec, n_components=2, max_iter=5, tol=0.0,
                seed=1,
            )
            from repro.join.reference import nested_loop_join

            joined = nested_loop_join(db, star.spec)
            scores = result.model.score_samples(joined.features)
            assert scores.shape == (500,)
            assert np.isfinite(scores).all()

    def test_hamlet_dataset_through_pipeline(self, tmp_path):
        with repro.Database(tmp_path / "db") as db:
            star = repro.load_hamlet(db, "walmart", scale=0.01, seed=1)
            result = repro.fit_gmm(
                db, star.spec, n_components=2, max_iter=3, tol=0.0,
                algorithm="streaming", seed=1,
            )
            assert result.fit.n_iter == 3


class TestNNPipeline:
    def test_network_learns_join_dependent_signal(self, tmp_path):
        """The target depends on dimension features, so the trained
        network must beat the best constant predictor."""
        with repro.Database(tmp_path / "db") as db:
            star = repro.generate_star(
                db,
                repro.StarSchemaConfig.binary(
                    n_s=3000, n_r=60, d_s=3, d_r=5, with_target=True,
                    noise=0.01, seed=5,
                ),
            )
            result = repro.fit_nn(
                db, star.spec, hidden_sizes=(50,), epochs=60,
                learning_rate=0.1, seed=2,
            )
            from repro.join.reference import nested_loop_join

            joined = nested_loop_join(db, star.spec)
            predictions = result.predict(joined.features).ravel()
            residual = np.mean((predictions - joined.targets) ** 2)
            constant_baseline = joined.targets.var()
            assert residual < 0.85 * constant_baseline

    def test_multiway_pipeline(self, tmp_path):
        with repro.Database(tmp_path / "db") as db:
            star = repro.load_movies_3way(
                db, scale=0.01, with_target=True, seed=4
            )
            result = repro.fit_nn(
                db, star.spec, hidden_sizes=(10,), epochs=3,
                learning_rate=0.05, seed=1,
            )
            assert len(result.loss_history) == 3
            assert np.isfinite(result.loss_history).all()

    def test_relu_and_tanh_networks_train(self, tmp_path):
        with repro.Database(tmp_path / "db") as db:
            star = repro.generate_star(
                db,
                repro.StarSchemaConfig.binary(
                    n_s=800, n_r=20, d_s=2, d_r=3, with_target=True,
                    seed=6,
                ),
            )
            for activation in ("relu", "tanh"):
                result = repro.fit_nn(
                    db, star.spec, hidden_sizes=(12,), epochs=10,
                    activation=activation, learning_rate=0.1, seed=3,
                )
                assert result.loss_history[-1] < result.loss_history[0]


class TestCrossStrategyConsistency:
    def test_gmm_strategies_identical_on_hamlet(self, tmp_path):
        with repro.Database(tmp_path / "db") as db:
            star = repro.load_hamlet(db, "movies", scale=0.005, seed=1)
            config = repro.EMConfig(
                n_components=2, max_iter=3, tol=0.0, seed=1
            )
            comparison = repro.compare_gmm_strategies(
                db, star.spec, config
            )
            results = list(comparison.results.values())
            assert results[0].params.allclose(results[1].params)
            assert results[1].params.allclose(results[2].params)

    def test_factorized_io_strictly_below_materialized(self, tmp_path):
        """F never writes and reads less than M for multi-pass
        training (the storage claim of Section I)."""
        with repro.Database(tmp_path / "db") as db:
            star = repro.generate_star(
                db,
                repro.StarSchemaConfig.binary(
                    n_s=2000, n_r=40, d_s=3, d_r=10, seed=7
                ),
            )
            config = repro.EMConfig(
                n_components=2, max_iter=4, tol=0.0, seed=1
            )
            comparison = repro.compare_gmm_strategies(
                db, star.spec, config
            )
            from repro.core.api import MATERIALIZED

            m_io = comparison.results[MATERIALIZED].io
            f_io = comparison.results[FACTORIZED].io
            assert f_io.pages_written == 0
            assert m_io.pages_written > 0
            assert f_io.total_pages < m_io.total_pages

    def test_database_state_clean_after_comparisons(self, tmp_path):
        with repro.Database(tmp_path / "db") as db:
            star = repro.generate_star(
                db,
                repro.StarSchemaConfig.binary(
                    n_s=300, n_r=10, d_s=2, d_r=2, seed=8
                ),
            )
            before = set(db.relation_names)
            config = repro.EMConfig(
                n_components=2, max_iter=2, tol=0.0, seed=1
            )
            repro.compare_gmm_strategies(db, star.spec, config)
            assert set(db.relation_names) == before
