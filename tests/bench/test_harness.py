"""The benchmark harness itself: sweeps run, verify, and render."""

import warnings

import pytest

from repro.bench.experiments import SCALES, BenchScale, active_scale
from repro.bench.harness import (
    SweepPoint,
    run_gmm_sweep,
    run_nn_sweep,
)
from repro.data.synthetic import StarSchemaConfig, generate_star
from repro.errors import ModelError
from repro.gmm.base import EMConfig
from repro.nn.base import NNConfig


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


def tiny_loader(with_target=False):
    def loader(db):
        star = generate_star(
            db,
            StarSchemaConfig.binary(
                n_s=150, n_r=10, d_s=2, d_r=2,
                with_target=with_target, seed=1,
            ),
        )
        return star.spec
    return loader


class TestSweepPoint:
    def test_speedup(self):
        point = SweepPoint(
            x=1,
            seconds={"materialized": 4.0, "streaming": 3.0,
                     "factorized": 1.5},
        )
        assert point.speedup("streaming") == pytest.approx(2.0)
        assert point.best_baseline_speedup() == pytest.approx(2.0)

    def test_best_baseline_requires_baselines(self):
        point = SweepPoint(x=1, seconds={"factorized": 1.0})
        with pytest.raises(ModelError):
            point.best_baseline_speedup()


class TestSweepRunners:
    def test_gmm_sweep_runs_and_renders(self):
        config = EMConfig(n_components=2, max_iter=2, tol=0.0, seed=1)
        result = run_gmm_sweep(
            "unit sweep", "x",
            [(1, tiny_loader()), (2, tiny_loader())],
            config,
        )
        assert len(result.points) == 2
        text = result.render()
        assert "unit sweep" in text
        assert "F speedup" in text
        assert result.strategies == [
            "materialized", "streaming", "factorized"
        ]

    def test_gmm_sweep_strategy_subset(self):
        config = EMConfig(n_components=2, max_iter=2, tol=0.0, seed=1)
        result = run_gmm_sweep(
            "subset", "x", [(1, tiny_loader())], config,
            strategies=("streaming", "factorized"),
        )
        assert result.strategies == ["streaming", "factorized"]

    def test_nn_sweep_runs(self):
        config = NNConfig(hidden_sizes=(4,), epochs=1, seed=1)
        result = run_nn_sweep(
            "nn sweep", "x", [(1, tiny_loader(with_target=True))],
            config,
        )
        assert len(result.points) == 1
        assert all(t > 0 for t in result.points[0].seconds.values())

    def test_nn_full_batch_exactness_enforced(self):
        config = NNConfig(
            hidden_sizes=(4,), epochs=1, seed=1, batch_mode="full"
        )
        result = run_nn_sweep(
            "nn full", "x", [(1, tiny_loader(with_target=True))],
            config,
        )
        assert result.points

    def test_sweep_emit_writes_file(self, tmp_path):
        config = EMConfig(n_components=2, max_iter=1, tol=0.0, seed=1)
        result = run_gmm_sweep(
            "emit", "x", [(1, tiny_loader())], config,
        )
        path = tmp_path / "series.txt"
        result.emit(path)
        assert "emit" in path.read_text()


class TestScales:
    def test_presets_exist(self):
        assert {"tiny", "small", "paper"} <= set(SCALES)

    def test_active_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert active_scale().name == "small"

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert active_scale().name == "tiny"

    def test_active_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            active_scale()

    def test_scales_are_ordered_by_size(self):
        assert SCALES["tiny"].n_r < SCALES["small"].n_r
        assert SCALES["small"].n_r <= SCALES["paper"].n_r

    def test_scale_is_frozen(self):
        with pytest.raises(AttributeError):
            SCALES["tiny"].n_r = 99

    def test_custom_scale_usable(self):
        scale = BenchScale(
            name="custom", n_r=10, rr_values=(5,), rr_fixed=5,
            dr_values=(2,), k_values=(2,), nh_values=(4,),
            hamlet_scale=0.001,
        )
        assert scale.em_iterations == 3
