"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    DimensionSpec,
    StarSchemaConfig,
    generate_star,
)
from repro.storage.catalog import Database
from repro.storage.schema import (
    Schema,
    feature,
    features,
    foreign_key,
    key,
    target,
)


@pytest.fixture
def db(tmp_path):
    """A fresh on-disk database in the test's temp directory."""
    database = Database(tmp_path / "db")
    yield database
    database.close(delete=True)


@pytest.fixture
def tiny_db(tmp_path):
    """A database with small pages so multi-page behaviour is exercised."""
    database = Database(tmp_path / "tinydb", page_size_bytes=256)
    yield database
    database.close(delete=True)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_binary_relations(db, rng, *, n_s=300, n_r=20, d_s=3, d_r=4,
                          with_target=False, fact="S", dim="R"):
    """Hand-rolled binary star relations (independent of the generator)."""
    r_rows = np.column_stack(
        [np.arange(n_r, dtype=np.float64), rng.normal(size=(n_r, d_r))]
    )
    db.create_relation(
        dim, Schema([key("rid"), *features("a", d_r)]), r_rows
    )
    columns = [key("sid")]
    parts = [np.arange(n_s, dtype=np.float64)[:, None]]
    if with_target:
        columns.append(target("y"))
        parts.append(rng.normal(size=(n_s, 1)))
    columns.extend(features("x", d_s))
    parts.append(rng.normal(size=(n_s, d_s)))
    columns.append(foreign_key("fk", dim))
    fks = rng.integers(0, n_r, size=n_s)
    fks[:n_r] = np.arange(n_r)  # every key referenced
    parts.append(fks[:, None].astype(np.float64))
    db.create_relation(fact, Schema(columns), np.concatenate(parts, axis=1))
    from repro.join.spec import JoinSpec

    return JoinSpec.binary(fact, dim)


@pytest.fixture
def binary_spec(db, rng):
    """A small hand-built S ⋈ R with no target."""
    return make_binary_relations(db, rng)


@pytest.fixture
def binary_target_spec(db, rng):
    """A small hand-built S ⋈ R with a target column."""
    return make_binary_relations(db, rng, with_target=True)


@pytest.fixture
def binary_star(db):
    """A generated binary star (with target) via the synthetic generator."""
    config = StarSchemaConfig.binary(
        n_s=500, n_r=25, d_s=3, d_r=5, with_target=True, seed=7
    )
    return generate_star(db, config)


@pytest.fixture
def multiway_star(db):
    """A generated 3-way star (S ⋈ R1 ⋈ R2) with target."""
    config = StarSchemaConfig(
        n_s=400,
        d_s=3,
        dimensions=(DimensionSpec(15, 4), DimensionSpec(9, 2)),
        with_target=True,
        seed=11,
    )
    return generate_star(db, config)
