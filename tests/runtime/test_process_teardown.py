"""Process-backend teardown guarantees: worker crashes fail only the
requests routed to the dead worker, shared-memory segments never
outlive the runtime (explicit close *or* interpreter exit), and close
is idempotent."""

import os
import subprocess
import sys
import tempfile
import warnings

import numpy as np
import pytest

from repro.core.api import fit_gmm, serve_runtime
from repro.data.synthetic import StarSchemaConfig, generate_star
from repro.errors import ModelError
from repro.fx.shm import SEGMENT_PREFIX

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR),
    reason="teardown assertions inspect /dev/shm (POSIX shm)",
)


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


def own_segments():
    """``/dev/shm`` entries created by *this* process (names embed the
    creating pid, so parallel test runs cannot interfere)."""
    marker = f"{SEGMENT_PREFIX}-{os.getpid()}-"
    return sorted(
        name for name in os.listdir(SHM_DIR) if name.startswith(marker)
    )


@pytest.fixture
def served(db):
    star = generate_star(
        db,
        StarSchemaConfig.binary(
            n_s=200, n_r=12, d_s=3, d_r=4, with_target=True, seed=7
        ),
    )
    gmm = fit_gmm(db, star.spec, n_components=2, max_iter=2, seed=1)
    fact = star.spec.resolve(db).fact
    rows = fact.scan()
    features = fact.project_features(rows)
    fks = np.column_stack(
        [
            rows[:, fact.schema.fk_position(d.relation)].astype(np.int64)
            for d in star.spec.dimensions
        ]
    )
    return star.spec, gmm, features, fks


class TestWorkerCrash:
    def test_crash_fails_only_the_requests_routed_to_the_dead_worker(
        self, db, served
    ):
        spec, gmm, features, fks = served
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            rt.register_gmm("g", gmm, spec)
            expected = rt.predict("g", features, fks)

            rt._executor.crash_worker(0)

            dead = fks[:, 0] % 2 == 0       # RIDs affine to worker 0
            with pytest.raises(ModelError, match="died"):
                rt.predict("g", features[dead], fks[dead])
            # Requests affine to the surviving worker keep serving,
            # with unchanged answers.
            alive = rt.predict("g", features[~dead], fks[~dead])
            np.testing.assert_array_equal(alive, expected[~dead])

    def test_mixed_batch_fails_only_the_dead_workers_rows(
        self, db, served
    ):
        spec, gmm, features, fks = served
        with serve_runtime(
            db, num_workers=2, max_wait_ms=5.0, max_batch_rows=512,
            executor="process",
        ) as rt:
            rt.register_gmm("g", gmm, spec)
            expected = rt.predict("g", features, fks)
            rt._executor.crash_worker(1)

            # One coalesced batch spanning both workers: the batch
            # fails wholesale, then the per-request retry fails exactly
            # the requests whose rows route to the dead worker.
            dead = fks[:, 0] % 2 == 1
            futures = [
                rt.submit("g", features[i:i + 20], fks[i:i + 20])
                for i in range(0, features.shape[0], 20)
            ]
            for index, future in enumerate(futures):
                lo, hi = index * 20, index * 20 + 20
                routed_dead = bool(dead[lo:hi].any())
                if routed_dead:
                    with pytest.raises(ModelError):
                        future.result(60.0)
                else:
                    np.testing.assert_array_equal(
                        future.result(60.0), expected[lo:hi]
                    )

    def test_mid_scatter_failure_drains_started_subbatches(
        self, db, served, monkeypatch
    ):
        """If scatter fails after some workers were sent an EXEC, the
        started sub-batches are still gathered before the failure
        propagates — a worker left owing a reply would have its task
        slab rewritten by the retry while the abandoned EXEC may still
        execute over it."""
        spec, gmm, features, fks = served
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            rt.register_gmm("g", gmm, spec)
            expected = rt.predict("g", features, fks)

            real = rt._executor.start_subbatch

            def flaky(worker, *args, **kwargs):
                if worker == 1:
                    raise ModelError("injected scatter failure")
                return real(worker, *args, **kwargs)

            monkeypatch.setattr(rt._executor, "start_subbatch", flaky)
            with pytest.raises(ModelError, match="injected"):
                rt.predict("g", features, fks)
            # Worker 0's sub-batch was started before the failure; it
            # must have been drained — no parked reply, nothing left
            # in the pipe.
            handle = rt._executor.workers[0]
            assert handle._replies == {}
            assert not handle.conn.poll(0.05)
            monkeypatch.undo()

            # And the drained worker keeps serving, bit-exact.
            mine = fks[:, 0] % 2 == 0
            alive = rt.predict("g", features[mine], fks[mine])
            np.testing.assert_array_equal(alive, expected[mine])

    def test_register_after_total_worker_loss_raises_model_error(
        self, db, served
    ):
        spec, gmm, _, _ = served
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            rt._executor.crash_worker(0)
            rt._executor.crash_worker(1)
            # One broadcast marks both handles dead (send or reply
            # fails, depending on how fast the pipe observes the exit).
            try:
                rt._executor.sample_stats()
            except ModelError:
                pass
            assert all(h.dead for h in rt._executor.workers)
            with pytest.raises(
                ModelError, match="all worker processes"
            ):
                rt.register_gmm("g", gmm, spec)

    def test_reply_timeout_terminates_and_removes_the_worker(self):
        """A stalled worker cannot stay in rotation: the timeout path
        terminates it (so it can no longer touch shared memory) and
        marks it dead, so later sends fail fast instead of rewriting
        its task slab under a possibly-running EXEC."""
        import multiprocessing as mp

        from repro.runtime.procpool import WorkerDied, _WorkerHandle

        class StalledProcess:
            def __init__(self):
                self.terminated = False

            def is_alive(self):
                return not self.terminated

            def terminate(self):
                self.terminated = True

            @property
            def exitcode(self):
                return -15 if self.terminated else None

        parent_conn, child_conn = mp.Pipe(duplex=True)
        try:
            handle = _WorkerHandle(0, StalledProcess(), parent_conn)
            with pytest.raises(WorkerDied, match="did not reply"):
                handle.recv_reply(7, timeout=0.3)
            assert handle.dead
            assert handle.process.terminated
            with pytest.raises(WorkerDied):
                handle.send(3, 8, {})
        finally:
            parent_conn.close()
            child_conn.close()

    def test_close_after_a_crash_leaves_no_segments(self, db, served):
        spec, gmm, features, fks = served
        rt = serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        )
        rt.register_gmm("g", gmm, spec)
        rt.predict("g", features, fks)
        rt._executor.crash_worker(0)
        rt.close()
        assert own_segments() == []


class TestSegmentLifecycle:
    def test_segments_exist_while_serving_and_vanish_on_close(
        self, db, served
    ):
        spec, gmm, features, fks = served
        rt = serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        )
        try:
            rt.register_gmm("g", gmm, spec)
            rt.predict("g", features, fks)
            live = own_segments()
            # Header + per-worker (task, partial) segments.
            assert len(live) == 1 + 2 * 2
        finally:
            rt.close()
        assert own_segments() == []

    def test_clean_close_exits_workers_with_code_zero(self, db, served):
        """SHUTDOWN runs worker teardown twice (end of run() plus the
        entry point's finally); the second call must be a no-op — a
        non-idempotent shutdown would crash the worker on exit."""
        spec, gmm, features, fks = served
        rt = serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        )
        rt.register_gmm("g", gmm, spec)
        rt.predict("g", features, fks)
        rt.close()
        for handle in rt._executor.workers:
            assert handle.process.exitcode == 0

    def test_close_is_idempotent(self, db, served):
        spec, gmm, features, fks = served
        rt = serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        )
        rt.register_gmm("g", gmm, spec)
        rt.predict("g", features, fks)
        rt.close()
        rt.close()
        assert rt._executor.closed
        assert own_segments() == []

    def test_interpreter_exit_without_close_unlinks_segments(
        self, db, served, tmp_path
    ):
        """A runtime that is never closed must still not leak
        ``/dev/shm`` entries: the arena's atexit hook unlinks every
        owned segment when the owning interpreter exits."""
        spec, gmm, features, fks = served
        script = tmp_path / "leaky.py"
        script.write_text(
            "import os, warnings\n"
            "warnings.simplefilter('ignore')\n"
            "import numpy as np\n"
            "from repro.core.api import fit_gmm, serve_runtime\n"
            "from repro.data.synthetic import StarSchemaConfig, "
            "generate_star\n"
            "from repro.storage.catalog import Database\n"
            f"db = Database({str(tmp_path / 'leakdb')!r})\n"
            "star = generate_star(db, StarSchemaConfig.binary(\n"
            "    n_s=80, n_r=8, d_s=3, d_r=4, with_target=True, seed=3))\n"
            "gmm = fit_gmm(db, star.spec, n_components=2, max_iter=2, "
            "seed=1)\n"
            "fact = star.spec.resolve(db).fact\n"
            "rows = fact.scan()\n"
            "features = fact.project_features(rows)\n"
            "fks = [rows[:, fact.schema.fk_position(d.relation)]"
            ".astype(np.int64) for d in star.spec.dimensions]\n"
            "rt = serve_runtime(db, num_workers=2, max_wait_ms=0.0,\n"
            "                   executor='process')\n"
            "rt.register_gmm('g', gmm, star.spec)\n"
            "rt.predict('g', features, fks)\n"
            "print('PID', os.getpid())\n"
            "# exit without rt.close() / db.close()\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=300, env=env,
        )
        assert result.returncode == 0, result.stderr
        child_pid = int(result.stdout.split("PID")[1].strip())
        marker = f"{SEGMENT_PREFIX}-{child_pid}-"
        leaked = [
            name for name in os.listdir(SHM_DIR)
            if name.startswith(marker)
        ]
        assert leaked == []

class TestTieredParity:
    """Thread and process executors must agree on tiered outcomes —
    and ``close()`` must reclaim every spill directory along with the
    shared-memory segments."""

    TIERS = ("float32", "spill")
    BUDGET = 64        # bytes — tight enough that every batch demotes

    @staticmethod
    def spill_dirs():
        root = tempfile.gettempdir()
        return sorted(
            name for name in os.listdir(root)
            if name.startswith("repro-spill-")
        )

    def run_tiered(self, db, served, executor):
        spec, gmm, features, fks = served
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor=executor,
            memory_budget=self.BUDGET, store_tiers=self.TIERS,
        ) as rt:
            rt.register_gmm("g", gmm, spec)
            labels = rt.predict("g", features, fks)
            # A second pass re-reads rows the first pass demoted.
            labels2 = rt.predict("g", features, fks)
            scores = rt.score("g", features, fks)
            store = rt.runtime_stats().store
            demoted = sum(store.tier_demotions.values())
        np.testing.assert_array_equal(labels, labels2)
        return labels, scores, demoted

    def test_executors_agree_on_tiered_outcomes(self, db, served):
        t_labels, t_scores, t_demoted = self.run_tiered(
            db, served, "thread"
        )
        p_labels, p_scores, p_demoted = self.run_tiered(
            db, served, "process"
        )
        # The budget actually exercised the ladder in both backends...
        assert t_demoted > 0
        assert p_demoted > 0
        # ...and the contract holds across them: labels bit-exact,
        # scores within a whisker (recompute paths batch rows
        # differently, so BLAS may round the last ulp differently).
        np.testing.assert_array_equal(t_labels, p_labels)
        np.testing.assert_allclose(t_scores, p_scores, rtol=1e-9)

    def test_tiered_matches_untiered_within_contract(self, db, served):
        from repro.fx.tiers import FLOAT32_SCORE_RTOL

        spec, gmm, features, fks = served
        with serve_runtime(db, num_workers=2, max_wait_ms=0.0) as rt:
            rt.register_gmm("g", gmm, spec)
            base_labels = rt.predict("g", features, fks)
            base_scores = rt.score("g", features, fks)
        labels, scores, demoted = self.run_tiered(db, served, "thread")
        assert demoted > 0
        np.testing.assert_array_equal(labels, base_labels)
        np.testing.assert_allclose(
            scores, base_scores, rtol=FLOAT32_SCORE_RTOL
        )

    def test_tiered_close_reclaims_spill_dirs_and_segments(
        self, db, served
    ):
        spec, gmm, features, fks = served
        before = self.spill_dirs()
        for executor in ("thread", "process"):
            rt = serve_runtime(
                db, num_workers=2, max_wait_ms=0.0, executor=executor,
                memory_budget=self.BUDGET, store_tiers=self.TIERS,
            )
            try:
                rt.register_gmm("g", gmm, spec)
                rt.predict("g", features, fks)
            finally:
                rt.close()
            rt.close()                 # tier teardown stays idempotent
            assert own_segments() == []
        # No spill directory born during either run survives close().
        assert self.spill_dirs() == before
