"""BatchPlanner: cost-model-driven per-batch strategy choice."""

import numpy as np
import pytest

from repro.core.strategies import FACTORIZED, MATERIALIZED
from repro.errors import ModelError
from repro.runtime.planner import BatchPlanner, PlannerStats
from repro.serve.cost_model import (
    gmm_serving_mults_dense,
    gmm_serving_mults_factorized,
    nn_serving_mults_dense,
    nn_serving_mults_factorized,
)


def fks_with_distinct(n, m):
    """n FK values drawing from m distinct RIDs (every RID appears)."""
    return [np.arange(n, dtype=np.int64) % m]


class TestCostCounts:
    """The planner's multi-way generalization must reduce to the
    published binary-join counts of repro.serve.cost_model."""

    @pytest.mark.parametrize("n,m", [(100, 5), (64, 64), (1, 1)])
    def test_nn_binary_counts_match_cost_model(self, n, m):
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15,), width_param=32)
        assert planner.dense_mults(n) == nn_serving_mults_dense(n, 5, 15, 32)
        assert planner.factorized_mults(n, (m,), (0.0,)) == (
            nn_serving_mults_factorized(n, m, 5, 15, 32)
        )

    @pytest.mark.parametrize("n,m", [(100, 5), (64, 64)])
    def test_gmm_binary_counts_match_cost_model(self, n, m):
        planner = BatchPlanner("gmm", d_s=5, dim_widths=(15,), width_param=3)
        assert planner.dense_mults(n) == gmm_serving_mults_dense(n, 5, 15, 3)
        assert planner.factorized_mults(n, (m,), (0.0,)) == (
            gmm_serving_mults_factorized(n, m, 5, 15, 3)
        )

    def test_warm_cache_discounts_dimension_work(self):
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15,), width_param=32)
        cold = planner.factorized_mults(100, (10,), (0.0,))
        warm = planner.factorized_mults(100, (10,), (1.0,))
        assert warm < cold
        assert warm == 100 * 32 * 5  # fact-side work only


class TestDecisions:
    def test_redundant_batch_plans_factorized(self):
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15,), width_param=32)
        decision = planner.plan(fks_with_distinct(128, 4))
        assert decision.strategy == FACTORIZED
        assert decision.rows == 128
        assert decision.distinct == (4,)
        assert decision.factorized_mults < decision.dense_mults
        assert 0 < decision.saving_rate < 1

    def test_all_distinct_cold_nn_batch_plans_materialized(self):
        # With m == n and a cold cache the NN counts tie exactly; the
        # tie goes to the dense path (no cache maintenance).
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15,), width_param=32)
        decision = planner.plan(fks_with_distinct(64, 64))
        assert decision.strategy == MATERIALIZED
        assert decision.factorized_mults == decision.dense_mults

    def test_warm_cache_flips_the_tie_to_factorized(self):
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15,), width_param=32)
        decision = planner.plan(fks_with_distinct(64, 64), (0.9,))
        assert decision.strategy == FACTORIZED

    def test_multiway_redundant_batch_plans_factorized(self):
        planner = BatchPlanner(
            "gmm", d_s=3, dim_widths=(4, 2), width_param=3
        )
        fks = [
            np.arange(90, dtype=np.int64) % 3,
            np.arange(90, dtype=np.int64) % 5,
        ]
        decision = planner.plan(fks)
        assert decision.strategy == FACTORIZED
        assert decision.distinct == (3, 5)

    def test_empty_batch_short_circuits(self):
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15,), width_param=32)
        decision = planner.plan([np.zeros(0, dtype=np.int64)])
        assert decision.rows == 0
        assert decision.dense_mults == 0

    def test_hit_rates_clamped_to_unit_interval(self):
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15,), width_param=32)
        decision = planner.plan(fks_with_distinct(64, 64), (7.0,))
        assert decision.factorized_mults == 64 * 32 * 5

    def test_fk_arity_mismatch_rejected(self):
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15, 3), width_param=8)
        with pytest.raises(ModelError, match="FK arrays"):
            planner.plan(fks_with_distinct(10, 2))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="svm", d_s=5, dim_widths=(15,), width_param=8),
            dict(kind="nn", d_s=0, dim_widths=(15,), width_param=8),
            dict(kind="nn", d_s=5, dim_widths=(), width_param=8),
        ],
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ModelError):
            BatchPlanner(**kwargs)


class TestPlannerStats:
    def test_decisions_accumulate_and_recent_is_bounded(self):
        planner = BatchPlanner("nn", d_s=5, dim_widths=(15,), width_param=32)
        stats = PlannerStats(recent_limit=4)
        for _ in range(6):
            stats.record(planner.plan(fks_with_distinct(32, 2)))
        stats.record(planner.plan(fks_with_distinct(8, 8)))
        assert stats.decisions[FACTORIZED] == 6
        assert stats.decisions[MATERIALIZED] == 1
        assert len(stats.recent) == 4
        assert stats.recent[-1].strategy == MATERIALIZED
