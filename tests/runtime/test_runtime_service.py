"""ServingRuntime: registration, submission, bookkeeping, lifecycle."""

import warnings

import numpy as np
import pytest

from repro.core.api import fit_gmm, fit_nn, serve_runtime
from repro.errors import ModelError
from repro.runtime.service import RuntimeConfig, ServingRuntime


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture
def runtime(db, binary_star):
    gmm = fit_gmm(db, binary_star.spec, n_components=2, max_iter=2, seed=1)
    nn = fit_nn(db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1)
    rt = serve_runtime(db, num_workers=2, max_wait_ms=1.0)
    rt.register_gmm("clusters", gmm, binary_star.spec)
    rt.register_nn("ratings", nn, binary_star.spec)
    yield rt, binary_star.spec, gmm, nn
    rt.close()


def a_request(db, spec, n=30, start=0):
    fact = spec.resolve(db).fact
    rows = fact.scan()[start:start + n]
    fk = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
    return fact.project_features(rows), fk


class TestRegistration:
    def test_adaptive_models_carry_both_predictors(self, runtime):
        rt, _, _, _ = runtime
        model = rt.model("clusters")
        assert model.strategy == "adaptive"
        assert model.factorized is not None
        assert model.materialized is not None
        assert model.planner is not None

    def test_fixed_strategy_pins_one_predictor(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        with serve_runtime(db) as rt:
            rt.register_nn("f", nn, binary_star.spec, strategy="factorized")
            rt.register_nn("m", nn, binary_star.spec, strategy="M")
            assert rt.model("f").materialized is None
            assert rt.model("f").planner is None
            assert rt.model("m").factorized is None
            assert rt.model("m").caches == []

    def test_caches_are_sharded_per_worker_by_default(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        with serve_runtime(db, num_workers=3) as rt:
            registered = rt.register_nn("n", nn, binary_star.spec)
            (cache,) = registered.caches
            assert cache.num_shards == 3

    def test_cache_capacity_with_materialized_rejected(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        with serve_runtime(db) as rt:
            with pytest.raises(ModelError, match="factorized"):
                rt.register_nn(
                    "m", nn, binary_star.spec,
                    strategy="materialized", cache_entries=8,
                )

    def test_streaming_rejected(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        with serve_runtime(db) as rt:
            with pytest.raises(ModelError, match="training-only"):
                rt.register_nn("s", nn, binary_star.spec, strategy="S")

    def test_duplicate_and_unknown_names(self, runtime):
        rt, spec, gmm, _ = runtime
        with pytest.raises(ModelError, match="already registered"):
            rt.register_gmm("clusters", gmm, spec)
        with pytest.raises(ModelError, match="no registered model"):
            rt.predict("nope", np.zeros((1, 3)), np.zeros(1, int))
        rt.unregister("clusters")
        assert "clusters" not in rt
        with pytest.raises(ModelError, match="no model"):
            rt.unregister("clusters")


class TestSubmission:
    def test_submit_returns_future_per_request(self, runtime, db):
        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec)
        futures = [
            rt.submit("ratings", features[i:i + 5], fk[i:i + 5])
            for i in range(0, 30, 5)
        ]
        outputs = np.concatenate([f.result(10.0) for f in futures])
        assert outputs.shape == (30, 1)

    def test_malformed_request_fails_fast_on_the_caller(self, runtime):
        rt, _, _, _ = runtime
        with pytest.raises(ModelError, match="width"):
            rt.submit("ratings", np.zeros((2, 9)), np.zeros(2, int))
        with pytest.raises(ModelError, match="foreign keys"):
            rt.submit("ratings", np.zeros((2, 3)), np.zeros(3, int))

    def test_score_is_gmm_only(self, runtime, db):
        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec, n=10)
        scores = rt.score("clusters", features, fk)
        assert scores.shape == (10,)
        with pytest.raises(ModelError, match="score"):
            rt.score("ratings", features, fk)

    def test_unknown_op_rejected(self, runtime, db):
        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec, n=2)
        with pytest.raises(ModelError, match="op"):
            rt.submit("clusters", features, fk, op="explain")

    def test_execution_errors_propagate_through_the_future(
        self, runtime, db
    ):
        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec, n=4)
        future = rt.submit("ratings", features, fk.copy() * 0 + 10**6)
        with pytest.raises(ModelError):
            future.result(10.0)
        # The worker survives a poisoned batch.
        assert rt.predict("ratings", features, fk).shape == (4, 1)

    def test_bad_request_does_not_poison_coalesced_neighbours(
        self, runtime, db
    ):
        # Drive the worker's batch path directly so the good and the
        # dangling-FK request are guaranteed to share one micro-batch.
        from repro.runtime.queue import Request
        from repro.runtime.service import WorkerStats

        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec, n=4)
        good = Request(("ratings", "predict"), features, [fk])
        bad = Request(
            ("ratings", "predict"), features, [fk * 0 + 10**6]
        )
        rt._execute([good, bad], WorkerStats())
        assert good.future.result(10.0).shape == (4, 1)
        with pytest.raises(ModelError):
            bad.future.result(10.0)


class TestBookkeeping:
    def test_stats_accumulate_per_model(self, runtime, db):
        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec, n=20)
        rt.predict("clusters", features, fk)
        rt.predict("clusters", features, fk)
        stats = rt.stats("clusters")
        assert stats.rows == 40
        assert stats.wall_seconds > 0
        assert stats.rows_per_second > 0
        assert rt.stats("ratings").requests == 0

    def test_runtime_stats_snapshot(self, runtime, db):
        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec, n=16)
        rt.predict("clusters", features, fk)
        rt.predict("ratings", features, fk)
        snapshot = rt.runtime_stats()
        assert snapshot.requests_enqueued >= 2
        assert snapshot.batches >= 2
        assert sum(snapshot.batch_size_histogram.values()) == (
            snapshot.batches
        )
        assert all(bucket >= 16 for bucket in snapshot.batch_size_histogram)
        assert len(snapshot.workers) == 2
        assert sum(w.batches for w in snapshot.workers) == snapshot.batches
        assert "clusters" in snapshot.planner_decisions
        assert "clusters" in snapshot.cache_stats

    def test_planner_decisions_recorded(self, runtime, db):
        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec, n=25)
        rt.predict("clusters", features, fk)
        decisions = rt.planner_stats("clusters").decisions
        assert sum(decisions.values()) == 1

    def test_cache_stats_per_dimension(self, runtime, db):
        rt, spec, _, _ = runtime
        features, fk = a_request(db, spec, n=25)
        rt.predict("clusters", features, fk)
        stats = rt.cache_stats("clusters")
        assert len(stats) == 1  # one dimension


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_new_work(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        rt = serve_runtime(db)
        rt.register_nn("n", nn, binary_star.spec)
        rt.close()
        rt.close()
        with pytest.raises(ModelError, match="closed"):
            rt.submit("n", np.zeros((1, 3)), np.zeros(1, int))
        with pytest.raises(ModelError, match="closed"):
            rt.register_nn("late", nn, binary_star.spec)

    def test_context_manager_closes(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        with serve_runtime(db) as rt:
            rt.register_nn("n", nn, binary_star.spec)
        with pytest.raises(ModelError, match="closed"):
            rt.submit("n", np.zeros((1, 3)), np.zeros(1, int))

    def test_queued_work_drains_on_close(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        rt = serve_runtime(db, num_workers=1)
        rt.register_nn("n", nn, binary_star.spec)
        features, fk = a_request(db, binary_star.spec, n=8)
        futures = [rt.submit("n", features, fk) for _ in range(20)]
        rt.close()
        for future in futures:
            assert future.result(10.0).shape == (8, 1)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_workers=0),
            dict(max_batch_rows=0),
            dict(max_wait_ms=-1.0),
            dict(cache_shards=0),
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ModelError):
            RuntimeConfig(**kwargs)

    def test_runtime_defaults(self, db):
        rt = ServingRuntime(db)
        assert rt.config.num_workers == 2
        rt.close()
