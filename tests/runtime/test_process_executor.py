"""Process-backend exactness and parity: ``executor="process"`` must be
indistinguishable from the threaded backend in everything but the
execution substrate.

The acceptance invariants: outputs are *bit-exact* against the threaded
runtime under a pinned strategy (scatter/gather by row index is pure
plumbing), match the dense oracle under the adaptive planner, stay
exact under concurrent submission and mid-run invalidation, and the
runtime's observability surface (stats, cache stats, budget control)
keeps working when the caches live in worker processes.
"""

import threading
import warnings

import numpy as np
import pytest

from repro.core.api import fit_gmm, fit_nn, serve_runtime
from repro.data.synthetic import (
    DimensionSpec,
    StarSchemaConfig,
    generate_star,
)
from repro.errors import ModelError
from repro.join.reference import nested_loop_join


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture(params=["binary", "multiway"])
def fitted(request, db):
    if request.param == "binary":
        config = StarSchemaConfig.binary(
            n_s=300, n_r=15, d_s=3, d_r=4, with_target=True, seed=7
        )
    else:
        config = StarSchemaConfig(
            n_s=240,
            d_s=3,
            dimensions=(DimensionSpec(15, 4), DimensionSpec(9, 2)),
            with_target=True,
            seed=11,
        )
    star = generate_star(db, config)
    gmm = fit_gmm(db, star.spec, n_components=3, max_iter=3, seed=1)
    nn = fit_nn(db, star.spec, hidden_sizes=(8,), epochs=2, seed=1)
    oracle = nested_loop_join(db, star.spec)
    return star.spec, gmm, nn, oracle


def stored_requests(db, spec, chunk):
    fact = spec.resolve(db).fact
    rows = fact.scan()
    features = fact.project_features(rows)
    fks = np.column_stack(
        [
            rows[:, fact.schema.fk_position(dim.relation)].astype(np.int64)
            for dim in spec.dimensions
        ]
    )
    return [
        (features[i:i + chunk], fks[i:i + chunk])
        for i in range(0, rows.shape[0], chunk)
    ]


def whole_batch(db, spec):
    (pair,) = stored_requests(db, spec, 10**9)
    return pair


class TestThreadProcessParity:
    """With matching batch composition (one worker each) both backends
    run the very same per-row arithmetic, so outputs must agree to the
    last bit.  With *split* batches the BLAS kernels see different
    matrix shapes, which legitimately moves the last ulp of float
    accumulation — there the contract is agreement to rounding error
    and determinism across process-mode runs."""

    def run_both(self, db, spec, register, call, *, workers=1):
        outputs = {}
        for executor in ("thread", "process"):
            with serve_runtime(
                db, num_workers=workers, max_wait_ms=0.0, executor=executor
            ) as rt:
                register(rt)
                outputs[executor] = call(rt)
        return outputs["thread"], outputs["process"]

    def test_gmm_labels_bit_exact_across_backends(self, db, fitted):
        spec, gmm, _, _ = fitted
        features, fks = whole_batch(db, spec)
        threaded, processed = self.run_both(
            db, spec,
            lambda rt: rt.register_gmm("g", gmm, spec, strategy="factorized"),
            lambda rt: rt.predict("g", features, fks),
            workers=2,
        )
        assert threaded.dtype == processed.dtype == np.int64
        np.testing.assert_array_equal(threaded, processed)

    def test_nn_outputs_bit_exact_with_matching_batches(self, db, fitted):
        spec, _, nn, _ = fitted
        features, fks = whole_batch(db, spec)
        threaded, processed = self.run_both(
            db, spec,
            lambda rt: rt.register_nn("n", nn, spec, strategy="factorized"),
            lambda rt: rt.predict("n", features, fks),
        )
        assert threaded.dtype == processed.dtype == np.float64
        np.testing.assert_array_equal(threaded, processed)

    def test_nn_outputs_agree_to_rounding_with_split_batches(
        self, db, fitted
    ):
        spec, _, nn, _ = fitted
        features, fks = whole_batch(db, spec)
        threaded, processed = self.run_both(
            db, spec,
            lambda rt: rt.register_nn("n", nn, spec, strategy="factorized"),
            lambda rt: rt.predict("n", features, fks),
            workers=2,
        )
        np.testing.assert_allclose(
            threaded, processed, rtol=0.0, atol=1e-14
        )

    def test_gmm_scores_bit_exact_across_backends(self, db, fitted):
        spec, gmm, _, _ = fitted
        features, fks = whole_batch(db, spec)
        threaded, processed = self.run_both(
            db, spec,
            lambda rt: rt.register_gmm("g", gmm, spec, strategy="factorized"),
            lambda rt: rt.score("g", features, fks),
        )
        np.testing.assert_array_equal(threaded, processed)

    def test_process_outputs_deterministic_across_runs(self, db, fitted):
        spec, _, nn, _ = fitted
        features, fks = whole_batch(db, spec)
        runs = []
        for _ in range(2):
            with serve_runtime(
                db, num_workers=2, max_wait_ms=0.0, executor="process"
            ) as rt:
                rt.register_nn("n", nn, spec, strategy="factorized")
                runs.append(rt.predict("n", features, fks))
        np.testing.assert_array_equal(runs[0], runs[1])


class TestAdaptiveExactness:
    """Under the adaptive planner, per-sub-batch strategy choices may
    legitimately differ from the threaded backend's whole-batch choice,
    so the contract is exactness against the dense oracle."""

    def test_gmm_labels_match_dense_model(self, db, fitted):
        spec, gmm, _, oracle = fitted
        expected = gmm.model.predict(oracle.features)
        with serve_runtime(
            db, num_workers=2, max_wait_ms=1.0, executor="process"
        ) as rt:
            rt.register_gmm("g", gmm, spec)
            futures = [
                rt.submit("g", features, fks)
                for features, fks in stored_requests(db, spec, 40)
            ]
            outputs = np.concatenate([f.result(60.0) for f in futures])
        np.testing.assert_array_equal(outputs, expected)

    def test_nn_outputs_match_dense_model(self, db, fitted):
        spec, _, nn, oracle = fitted
        expected = nn.predict(oracle.features)
        with serve_runtime(
            db, num_workers=2, max_wait_ms=1.0, executor="process"
        ) as rt:
            rt.register_nn("n", nn, spec)
            futures = [
                rt.submit("n", features, fks)
                for features, fks in stored_requests(db, spec, 40)
            ]
            outputs = np.concatenate([f.result(60.0) for f in futures])
        np.testing.assert_allclose(outputs, expected, rtol=1e-9, atol=1e-9)


class TestConcurrentLoad:
    def test_many_submitting_threads_each_get_their_own_answers(
        self, db, fitted
    ):
        spec, gmm, nn, oracle = fitted
        expected_labels = gmm.model.predict(oracle.features)
        expected_outputs = nn.predict(oracle.features)
        requests = stored_requests(db, spec, 25)
        bounds = np.cumsum([0] + [f.shape[0] for f, _ in requests])
        failures = []
        with serve_runtime(
            db, num_workers=2, max_wait_ms=2.0, max_batch_rows=128,
            executor="process",
        ) as rt:
            rt.register_gmm("g", gmm, spec)
            rt.register_nn("n", nn, spec)

            def client(thread_id):
                rng = np.random.default_rng(thread_id)
                order = rng.permutation(len(requests))
                for index in order:
                    features, fks = requests[index]
                    lo, hi = bounds[index], bounds[index + 1]
                    labels = rt.predict("g", features, fks, timeout=60.0)
                    if not np.array_equal(labels, expected_labels[lo:hi]):
                        failures.append(("gmm", thread_id, index))
                    outputs = rt.predict("n", features, fks, timeout=60.0)
                    if not np.allclose(
                        outputs, expected_outputs[lo:hi],
                        rtol=1e-9, atol=1e-9,
                    ):
                        failures.append(("nn", thread_id, index))

            threads = [
                threading.Thread(target=client, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = rt.runtime_stats()
        assert not failures
        assert snapshot.executor == "process"
        # Both worker processes actually executed rows.
        busy = [w for w in snapshot.workers if w.rows_executed]
        assert len(busy) == 2


class TestInvalidation:
    def test_mid_run_dimension_update_reaches_the_workers(self, db, fitted):
        spec, gmm, _, _ = fitted
        features, fks = whole_batch(db, spec)
        relation = spec.dimensions[0].relation
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            rt.register_gmm("g", gmm, spec, strategy="factorized")
            before = rt.predict("g", features, fks)
            assert before.shape == (features.shape[0],)

            # Shift every row of the first dimension; partials for all
            # its RIDs must be evicted in every worker.
            dim = db[relation]
            rows = dim.scan().copy()
            rows[:, 1:] += 2.5
            db.update_rows(
                relation, np.arange(rows.shape[0]), rows
            )

            after = rt.predict("g", features, fks)
            oracle = nested_loop_join(db, spec)
            expected = gmm.model.predict(oracle.features)
            np.testing.assert_array_equal(after, expected)
            assert rt.model("g").invalidated_rids == dim.scan().shape[0]
            stats = rt.runtime_stats()
            assert stats.invalidated_rids["g"] == rows.shape[0]


class TestBudgetGovernance:
    def test_budget_is_enforced_across_worker_processes(self, db, fitted):
        spec, gmm, _, _ = fitted
        features, fks = whole_batch(db, spec)
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process",
            memory_budget=1 << 16,
        ) as rt:
            rt.register_gmm("g", gmm, spec, strategy="factorized")
            rt.predict("g", features, fks)
            resident = rt._executor.worker_resident_floats()
            assert sum(resident) <= 1 << 16
            # Tighten mid-flight and force a sweep (predict() resolves
            # before the dispatcher's post-batch sweep, so this keeps
            # the assertion race-free): the deficit-bounded trims bring
            # the fleet back under the new global bound.
            rt.set_memory_budget(64)
            rt._executor.sweep_budget()
            resident = rt._executor.worker_resident_floats()
            assert sum(resident) <= 64

    def test_budget_cannot_be_imposed_on_unarmed_workers(self, db, fitted):
        spec, gmm, _, _ = fitted
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            rt.register_gmm("g", gmm, spec, strategy="factorized")
            with pytest.raises(ModelError):
                rt.set_memory_budget(1024)


class TestObservability:
    def test_runtime_stats_merge_worker_telemetry(self, db, fitted):
        spec, gmm, _, _ = fitted
        features, fks = whole_batch(db, spec)
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            rt.register_gmm("g", gmm, spec, strategy="factorized")
            rt.predict("g", features, fks)
            snapshot = rt.runtime_stats()
        assert snapshot.executor == "process"
        assert sum(w.rows_executed for w in snapshot.workers) == (
            features.shape[0]
        )
        # Scatter/gather latency histograms recorded the batch.
        assert snapshot.scatter_seconds.count >= 1
        assert snapshot.gather_seconds.count >= 1
        assert snapshot.scatter_seconds.sum >= 0.0
        # Cache stats come back from the workers and are aggregated.
        assert "g" in snapshot.cache_stats
        (merged,) = snapshot.cache_stats["g"][:1]
        assert merged.entries > 0
        # Shared-segment residency is reported distinctly.
        assert snapshot.store is not None
        assert snapshot.store.shm_bytes_resident > 0
        assert snapshot.store.private_bytes_resident == 0

    def test_cache_stats_by_name_work_in_process_mode(self, db, fitted):
        spec, gmm, _, _ = fitted
        features, fks = whole_batch(db, spec)
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            rt.register_gmm("g", gmm, spec, strategy="factorized")
            rt.predict("g", features, fks)
            per_dim = rt.cache_stats("g")
        assert len(per_dim) == len(spec.dimensions)
        assert sum(stats.entries for stats in per_dim) > 0


class TestRegistrationContract:
    def test_materialized_with_cache_bounds_rejected(self, db, fitted):
        spec, gmm, _, _ = fitted
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            with pytest.raises(ModelError, match="materialized"):
                rt.register_gmm(
                    "g", gmm, spec,
                    strategy="materialized", cache_entries=8,
                )

    def test_unregistered_model_stops_serving(self, db, fitted):
        spec, gmm, _, _ = fitted
        features, fks = whole_batch(db, spec)
        with serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        ) as rt:
            rt.register_gmm("g", gmm, spec)
            rt.predict("g", features, fks)
            rt.unregister("g")
            with pytest.raises(ModelError):
                rt.predict("g", features, fks)

    def test_unknown_executor_rejected(self, db):
        with pytest.raises(ModelError, match="executor"):
            serve_runtime(db, executor="fiber")
