"""Runtime exactness: concurrent micro-batched serving equals the
dense join oracle, on binary and multiway joins, for every strategy
the planner can pick.

The acceptance invariant of the runtime: coalescing, sharded caching,
adaptive planning and worker parallelism must be pure plumbing — the
outputs match the reference/materialized scoring bit-for-bit (GMM hard
labels) or to float-summation order (NN outputs).
"""

import threading
import warnings

import numpy as np
import pytest

from repro.core.api import fit_gmm, fit_nn, serve_runtime
from repro.data.synthetic import (
    DimensionSpec,
    StarSchemaConfig,
    generate_star,
)
from repro.join.reference import nested_loop_join


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture(params=["binary", "multiway"])
def fitted(request, db):
    if request.param == "binary":
        config = StarSchemaConfig.binary(
            n_s=500, n_r=25, d_s=3, d_r=5, with_target=True, seed=7
        )
    else:
        config = StarSchemaConfig(
            n_s=400,
            d_s=3,
            dimensions=(DimensionSpec(15, 4), DimensionSpec(9, 2)),
            with_target=True,
            seed=11,
        )
    star = generate_star(db, config)
    gmm = fit_gmm(db, star.spec, n_components=3, max_iter=3, seed=1)
    nn = fit_nn(db, star.spec, hidden_sizes=(8,), epochs=2, seed=1)
    oracle = nested_loop_join(db, star.spec)
    return star.spec, gmm, nn, oracle


def stored_requests(db, spec, chunk):
    """The stored fact tuples as a stream of normalized point requests."""
    fact = spec.resolve(db).fact
    rows = fact.scan()
    features = fact.project_features(rows)
    fks = np.column_stack(
        [
            rows[:, fact.schema.fk_position(dim.relation)].astype(np.int64)
            for dim in spec.dimensions
        ]
    )
    return [
        (features[i:i + chunk], fks[i:i + chunk])
        for i in range(0, rows.shape[0], chunk)
    ]


class TestSequentialSubmission:
    def test_gmm_labels_match_dense_model(self, db, fitted):
        spec, gmm, _, oracle = fitted
        expected = gmm.model.predict(oracle.features)
        with serve_runtime(db, num_workers=2, max_wait_ms=1.0) as rt:
            rt.register_gmm("g", gmm, spec)
            futures = [
                rt.submit("g", features, fks)
                for features, fks in stored_requests(db, spec, 40)
            ]
            outputs = np.concatenate([f.result(30.0) for f in futures])
        np.testing.assert_array_equal(outputs, expected)

    def test_nn_outputs_match_dense_model(self, db, fitted):
        spec, _, nn, oracle = fitted
        expected = nn.predict(oracle.features)
        with serve_runtime(db, num_workers=2, max_wait_ms=1.0) as rt:
            rt.register_nn("n", nn, spec)
            futures = [
                rt.submit("n", features, fks)
                for features, fks in stored_requests(db, spec, 40)
            ]
            outputs = np.concatenate([f.result(30.0) for f in futures])
        np.testing.assert_allclose(
            outputs, expected, rtol=1e-9, atol=1e-9
        )

    def test_gmm_scores_match_dense_model(self, db, fitted):
        spec, gmm, _, oracle = fitted
        expected = gmm.model.score_samples(oracle.features)
        with serve_runtime(db, num_workers=2, max_wait_ms=1.0) as rt:
            rt.register_gmm("g", gmm, spec)
            futures = [
                rt.submit("g", features, fks, op="score")
                for features, fks in stored_requests(db, spec, 64)
            ]
            outputs = np.concatenate([f.result(30.0) for f in futures])
        np.testing.assert_allclose(
            outputs, expected, rtol=1e-9, atol=1e-9
        )

    @pytest.mark.parametrize("strategy", ["factorized", "materialized"])
    def test_pinned_strategies_agree_with_adaptive(self, db, fitted, strategy):
        spec, gmm, _, oracle = fitted
        expected = gmm.model.predict(oracle.features)
        with serve_runtime(db, num_workers=2, max_wait_ms=0.0) as rt:
            rt.register_gmm("g", gmm, spec, strategy=strategy)
            futures = [
                rt.submit("g", features, fks)
                for features, fks in stored_requests(db, spec, 50)
            ]
            outputs = np.concatenate([f.result(30.0) for f in futures])
        np.testing.assert_array_equal(outputs, expected)


class TestConcurrentLoad:
    def test_many_submitting_threads_each_get_their_own_answers(
        self, db, fitted
    ):
        spec, gmm, nn, oracle = fitted
        expected_labels = gmm.model.predict(oracle.features)
        expected_outputs = nn.predict(oracle.features)
        requests = stored_requests(db, spec, 25)
        bounds = np.cumsum([0] + [f.shape[0] for f, _ in requests])
        failures = []
        with serve_runtime(
            db, num_workers=4, max_wait_ms=2.0, max_batch_rows=128
        ) as rt:
            rt.register_gmm("g", gmm, spec, cache_entries=16)
            rt.register_nn("n", nn, spec)

            def client(thread_id):
                rng = np.random.default_rng(thread_id)
                order = rng.permutation(len(requests))
                for index in order:
                    features, fks = requests[index]
                    lo, hi = bounds[index], bounds[index + 1]
                    labels = rt.predict("g", features, fks, timeout=30.0)
                    if not np.array_equal(labels, expected_labels[lo:hi]):
                        failures.append(("gmm", thread_id, index))
                    outputs = rt.predict("n", features, fks, timeout=30.0)
                    if not np.allclose(
                        outputs, expected_outputs[lo:hi],
                        rtol=1e-9, atol=1e-9,
                    ):
                        failures.append(("nn", thread_id, index))

            threads = [
                threading.Thread(target=client, args=(t,)) for t in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = rt.runtime_stats()
        assert not failures
        # The load was genuinely concurrent and genuinely batched.
        busy_workers = sum(1 for w in snapshot.workers if w.batches)
        assert busy_workers >= 2
        assert snapshot.batches >= 1
