"""RequestQueue: bounded admission and micro-batch coalescing."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ModelError
from repro.runtime.queue import Request, RequestQueue


def a_request(name="m", op="predict", rows=4):
    return Request(
        (name, op),
        np.zeros((rows, 2)),
        [np.zeros(rows, dtype=np.int64)],
    )


class TestAdmission:
    def test_fifo_within_a_key(self):
        queue = RequestQueue(8)
        first, second = a_request(rows=1), a_request(rows=2)
        queue.put(first)
        queue.put(second)
        batch = queue.take_batch(max_rows=100, max_wait=0.0)
        assert batch == [first, second]

    def test_depth_and_counters(self):
        queue = RequestQueue(8)
        for _ in range(3):
            queue.put(a_request())
        assert queue.depth == 3
        assert queue.enqueued == 3
        assert queue.max_depth_seen == 3
        queue.take_batch(max_rows=1, max_wait=0.0)
        assert queue.depth == 2
        assert queue.max_depth_seen == 3

    def test_full_queue_times_out(self):
        queue = RequestQueue(1)
        queue.put(a_request())
        with pytest.raises(ModelError, match="full"):
            queue.put(a_request(), timeout=0.01)

    def test_full_queue_unblocks_when_drained(self):
        queue = RequestQueue(1)
        queue.put(a_request())
        done = threading.Event()

        def producer():
            queue.put(a_request(), timeout=5.0)
            done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        queue.take_batch(max_rows=1, max_wait=0.0)
        assert done.wait(5.0)
        thread.join()

    def test_put_after_close_rejected(self):
        queue = RequestQueue(4)
        queue.close()
        with pytest.raises(ModelError, match="closed"):
            queue.put(a_request())

    def test_nonpositive_depth_rejected(self):
        with pytest.raises(ModelError, match="depth"):
            RequestQueue(0)


class TestCoalescing:
    def test_same_key_requests_coalesce(self):
        queue = RequestQueue(16)
        for _ in range(5):
            queue.put(a_request(rows=3))
        batch = queue.take_batch(max_rows=100, max_wait=0.0)
        assert len(batch) == 5
        assert sum(r.rows for r in batch) == 15
        assert queue.depth == 0

    def test_max_rows_bounds_the_batch(self):
        queue = RequestQueue(16)
        for _ in range(5):
            queue.put(a_request(rows=3))
        batch = queue.take_batch(max_rows=7, max_wait=0.0)
        # Stop at the first request that reaches/overruns the budget.
        assert len(batch) == 3
        assert queue.depth == 2

    def test_other_keys_left_queued_in_order(self):
        queue = RequestQueue(16)
        queue.put(a_request("a"))
        queue.put(a_request("b", rows=1))
        queue.put(a_request("a"))
        queue.put(a_request("b", rows=2))
        batch = queue.take_batch(max_rows=100, max_wait=0.0)
        assert all(r.batch_key == ("a", "predict") for r in batch)
        assert len(batch) == 2
        remainder = queue.take_batch(max_rows=100, max_wait=0.0)
        assert [r.rows for r in remainder] == [1, 2]

    def test_predict_and_score_never_mix(self):
        queue = RequestQueue(16)
        queue.put(a_request("m", op="predict"))
        queue.put(a_request("m", op="score"))
        batch = queue.take_batch(max_rows=100, max_wait=0.0)
        assert len(batch) == 1
        assert batch[0].batch_key == ("m", "predict")

    def test_lingering_collects_stragglers(self):
        queue = RequestQueue(16)
        queue.put(a_request(rows=1))

        def late_producer():
            time.sleep(0.02)
            queue.put(a_request(rows=1))

        thread = threading.Thread(target=late_producer)
        thread.start()
        batch = queue.take_batch(max_rows=100, max_wait=1.0)
        thread.join()
        assert len(batch) == 2

    def test_zero_wait_returns_immediately(self):
        queue = RequestQueue(16)
        queue.put(a_request())
        tick = time.perf_counter()
        batch = queue.take_batch(max_rows=10**6, max_wait=0.0)
        assert time.perf_counter() - tick < 0.5
        assert len(batch) == 1


class TestLifecycle:
    def test_take_batch_returns_none_when_closed_and_drained(self):
        queue = RequestQueue(4)
        queue.put(a_request())
        queue.close()
        assert queue.take_batch(max_rows=10, max_wait=0.0) is not None
        assert queue.take_batch(max_rows=10, max_wait=0.0) is None

    def test_close_wakes_blocked_consumer(self):
        queue = RequestQueue(4)
        results = []

        def consumer():
            results.append(queue.take_batch(max_rows=10, max_wait=0.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.02)
        queue.close()
        thread.join(5.0)
        assert results == [None]

    def test_drain_empties_the_queue(self):
        queue = RequestQueue(4)
        queue.put(a_request())
        queue.put(a_request("b"))
        drained = queue.drain()
        assert len(drained) == 2
        assert queue.depth == 0
