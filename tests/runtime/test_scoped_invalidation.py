"""Page-scoped buffer-pool invalidation in the process workers.

A dimension update names the touched heap rows (``event.positions``);
the worker-side handler must drop only their buffer-pool pages, keeping
every untouched page resident, and fall back to dropping the whole
relation when an event arrives without positions.  End-to-end, the
process backend must keep serving exact outputs after an in-place
update, with the invalidation counts pinned to the touched rows.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.api import fit_nn, predict_nn, serve_runtime
from repro.data.synthetic import StarSchemaConfig, generate_star
from repro.fx.shm import HEADER_FIELDS
from repro.runtime.procworker import _Worker


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


class _StubStore:
    def publish_header(self) -> None:
        pass


def _stub_worker(db) -> _Worker:
    """A worker shell with just enough state for ``on_invalidate``."""
    worker = object.__new__(_Worker)
    worker.models = {}
    worker.db = db
    worker.header = np.zeros(HEADER_FIELDS)
    worker.store = _StubStore()
    return worker


def _resident_pages(db, heap) -> set[int]:
    path = str(heap.path)
    return {
        page for (file, page) in db.buffer_pool._pages if file == path
    }


class TestWorkerPageScopedInvalidation:
    @pytest.fixture
    def star(self, tiny_db):
        # Small pages so the dimension heap spans several of them.
        config = StarSchemaConfig.binary(
            n_s=200, n_r=60, d_s=3, d_r=4, with_target=True, seed=3
        )
        return generate_star(tiny_db, config)

    def test_positions_drop_only_their_pages(self, tiny_db, star):
        relation = tiny_db.relation("R1")
        heap = relation.heap
        for page in range(heap.npages):
            tiny_db.buffer_pool.get_page(heap, page)
        assert heap.npages >= 3
        assert _resident_pages(tiny_db, heap) == set(range(heap.npages))

        worker = _stub_worker(tiny_db)
        position = heap.rows_per_page          # first row of page 1
        worker.on_invalidate(
            {
                "relation": "R1",
                "rids": np.array([position], dtype=np.int64),
                "positions": np.array([position], dtype=np.int64),
            }
        )
        expected = set(range(heap.npages)) - {1}
        assert _resident_pages(tiny_db, heap) == expected

    def test_multiple_positions_coalesce_to_distinct_pages(
        self, tiny_db, star
    ):
        relation = tiny_db.relation("R1")
        heap = relation.heap
        for page in range(heap.npages):
            tiny_db.buffer_pool.get_page(heap, page)

        worker = _stub_worker(tiny_db)
        rows = heap.rows_per_page
        positions = np.array([0, 1, rows, rows + 1], dtype=np.int64)
        worker.on_invalidate(
            {
                "relation": "R1",
                "rids": positions,
                "positions": positions,
            }
        )
        expected = set(range(heap.npages)) - {0, 1}
        assert _resident_pages(tiny_db, heap) == expected

    def test_missing_positions_fall_back_to_whole_relation(
        self, tiny_db, star
    ):
        relation = tiny_db.relation("R1")
        heap = relation.heap
        for page in range(heap.npages):
            tiny_db.buffer_pool.get_page(heap, page)
        fact_heap = tiny_db.relation("S").heap
        tiny_db.buffer_pool.get_page(fact_heap, 0)

        worker = _stub_worker(tiny_db)
        worker.on_invalidate(
            {
                "relation": "R1",
                "rids": np.array([0], dtype=np.int64),
                "positions": None,
            }
        )
        assert _resident_pages(tiny_db, heap) == set()
        # Other relations' pages are never touched.
        assert _resident_pages(tiny_db, fact_heap) == {0}


class TestProcessBackendEndToEnd:
    def test_update_invalidation_counts_pinned_and_outputs_exact(self, db):
        star = generate_star(
            db,
            StarSchemaConfig.binary(
                n_s=240, n_r=20, d_s=3, d_r=4, with_target=True, seed=5
            ),
        )
        spec = star.spec
        nn = fit_nn(db, spec, hidden_sizes=(6,), epochs=1, seed=1)
        fact = spec.resolve(db).fact
        rows = fact.scan()[:64]
        features = fact.project_features(rows)
        fks = rows[:, fact.schema.fk_position("R1")].astype(np.int64)

        rt = serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor="process"
        )
        try:
            rt.register_nn("n", nn, spec, strategy="factorized")
            rt.predict("n", features, fks)

            victims = np.array([int(fks[0]), int(fks[1])])
            victims = np.unique(victims)
            relation = db.relation("R1")
            positions = relation.positions_of_keys(victims)
            replacement = relation.scan()[positions].copy()
            replacement[:, 1:] += 2.0
            db.update_rows("R1", positions, replacement)

            # The parent-side counter pins the touched-RID count.
            assert rt.runtime_stats().invalidated_rids["n"] == len(
                victims
            )
            served = rt.predict("n", features, fks)
            oracle = predict_nn(db, spec, nn, features, fks)
            np.testing.assert_array_equal(served, oracle)
        finally:
            rt.close()
