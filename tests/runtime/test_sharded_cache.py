"""ShardedPartialCache: placement, concurrency, invalidation, stats."""

import threading

import numpy as np
import pytest

from repro.errors import ModelError
from repro.runtime.sharding import ShardedPartialCache


def rows_for(keys):
    keys = np.asarray(keys, dtype=np.float64)
    return np.column_stack([keys, keys * 10.0])


class TestPlacement:
    def test_rid_hash_routes_to_one_shard(self):
        cache = ShardedPartialCache(4)
        cache.get_many(np.arange(8), rows_for)
        for key in range(8):
            shard = cache.shard_of(key)
            assert key in cache.shards[shard]
            for other, shard_cache in enumerate(cache.shards):
                if other != shard:
                    assert key not in shard_cache

    def test_results_align_with_requested_order(self):
        cache = ShardedPartialCache(3)
        keys = np.array([7, 2, 9, 2, 0, 11])
        np.testing.assert_array_equal(
            cache.get_many(keys, rows_for), rows_for(keys)
        )
        # warm pass, shuffled order
        np.testing.assert_array_equal(
            cache.get_many(keys[::-1], rows_for), rows_for(keys[::-1])
        )

    def test_empty_keys(self):
        assert ShardedPartialCache(2).get_many(
            np.zeros(0, dtype=np.int64), rows_for
        ).shape == (0, 0)

    def test_capacity_splits_across_shards(self):
        cache = ShardedPartialCache(2, capacity=4)
        assert all(shard.capacity == 2 for shard in cache.shards)
        cache_floats = ShardedPartialCache(2, capacity_floats=10)
        assert all(
            shard.capacity_floats == 5 for shard in cache_floats.shards
        )

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ModelError, match="num_shards"):
            ShardedPartialCache(0)


class TestInvalidation:
    def test_invalidate_evicts_exactly_the_given_rids(self):
        cache = ShardedPartialCache(4)
        cache.get_many(np.arange(12), rows_for)
        dropped = cache.invalidate(np.array([3, 7]))
        assert dropped == 2
        assert len(cache) == 10
        assert 3 not in cache and 7 not in cache
        assert all(
            k in cache for k in range(12) if k not in (3, 7)
        )

    def test_invalidate_missing_rids_is_a_noop(self):
        cache = ShardedPartialCache(2)
        cache.get_many(np.array([1]), rows_for)
        assert cache.invalidate(np.array([99])) == 0
        assert len(cache) == 1

    def test_invalidation_counted_separately_from_evictions(self):
        cache = ShardedPartialCache(2)
        cache.get_many(np.array([1, 2]), rows_for)
        cache.invalidate(np.array([1]))
        stats = cache.stats()
        assert stats.invalidations == 1
        assert stats.evictions == 0


class TestStats:
    def test_shard_stats_and_aggregate(self):
        cache = ShardedPartialCache(2, capacity=8)
        cache.get_many(np.arange(6), rows_for)
        cache.get_many(np.arange(6), rows_for)   # warm
        per_shard = cache.shard_stats()
        assert len(per_shard) == 2
        total = cache.stats()
        assert total.misses == 6 and total.hits == 6
        assert total.entries == 6
        assert total.capacity == 8
        assert total.bytes_resident == 6 * 2 * 8
        assert cache.hit_rate == pytest.approx(0.5)

    def test_unbounded_aggregate_capacity_is_none(self):
        assert ShardedPartialCache(3).stats().capacity is None

    def test_clear(self):
        cache = ShardedPartialCache(2)
        cache.get_many(np.arange(4), rows_for)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 0


class TestConcurrency:
    def test_parallel_get_many_is_exact_and_loses_no_counts(self):
        cache = ShardedPartialCache(4)
        errors = []

        def hammer(seed):
            rng = np.random.default_rng(seed)
            for _ in range(30):
                keys = rng.integers(0, 40, size=16)
                out = cache.get_many(keys, rows_for)
                if not np.array_equal(out, rows_for(keys)):
                    errors.append(keys)

        threads = [
            threading.Thread(target=hammer, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.lookups == 6 * 30 * 16

    def test_invalidate_races_with_lookups(self):
        cache = ShardedPartialCache(4)
        stop = threading.Event()
        errors = []

        def reader():
            rng = np.random.default_rng(0)
            while not stop.is_set():
                keys = rng.integers(0, 20, size=8)
                out = cache.get_many(keys, rows_for)
                if not np.array_equal(out, rows_for(keys)):
                    errors.append(keys)

        def invalidator():
            rng = np.random.default_rng(1)
            for _ in range(200):
                cache.invalidate(rng.integers(0, 20, size=2))
            stop.set()

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=reader),
            threading.Thread(target=invalidator),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
