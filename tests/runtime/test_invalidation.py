"""Dimension-update invalidation: row-version events evict exactly the
affected RIDs' partials across all shards, and the next prediction
reflects the new rows."""

import warnings

import numpy as np
import pytest

from repro.core.api import fit_nn, predict_nn, serve_runtime
from repro.errors import StorageError


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture
def served(db, binary_star):
    nn = fit_nn(db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1)
    rt = serve_runtime(db, num_workers=2, max_wait_ms=0.0)
    rt.register_nn("n", nn, binary_star.spec, strategy="factorized")
    yield rt, binary_star.spec, nn
    rt.close()


def warm_request(db, spec, n=60):
    fact = spec.resolve(db).fact
    rows = fact.scan()[:n]
    fks = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
    return fact.project_features(rows), fks


def bump_dimension_row(db, rid, delta=5.0):
    """Shift one R1 row's features in place; returns the event."""
    relation = db["R1"]
    position = relation.positions_of_keys(np.array([rid]))
    row = relation.scan()[position[0]].copy()
    row[1:] += delta           # features only; the key must not change
    return db.update_rows("R1", position, row[None, :])


class TestEviction:
    def test_exactly_the_affected_rid_is_evicted_across_shards(
        self, db, served
    ):
        rt, spec, _ = served
        features, fks = warm_request(db, spec)
        rt.predict("n", features, fks)
        (cache,) = rt.model("n").caches
        cached_before = {k for k in np.unique(fks).tolist() if k in cache}
        assert cached_before  # the request warmed the cache
        victim = int(fks[0])

        event = bump_dimension_row(db, victim)
        assert event.relation == "R1"
        np.testing.assert_array_equal(event.rids, [victim])
        assert event.version == 1

        assert victim not in cache
        survivors = cached_before - {victim}
        for rid in survivors:
            assert rid in cache, f"RID {rid} was collaterally evicted"
        assert rt.model("n").invalidated_rids == 1
        stats = rt.runtime_stats()
        assert stats.invalidated_rids["n"] == 1
        assert cache.stats().invalidations == 1

    def test_next_prediction_reflects_the_new_row(self, db, served):
        rt, spec, nn = served
        features, fks = warm_request(db, spec)
        before = rt.predict("n", features, fks)
        victim = int(fks[0])
        bump_dimension_row(db, victim)

        after = rt.predict("n", features, fks)
        oracle = predict_nn(
            db, spec, nn, features, fks, strategy="materialized"
        )
        np.testing.assert_allclose(after, oracle, rtol=1e-9, atol=1e-9)
        touched = fks == victim
        assert not np.allclose(after[touched], before[touched])
        np.testing.assert_allclose(
            after[~touched], before[~touched], rtol=1e-12, atol=1e-12
        )

    def test_update_to_unrelated_relation_evicts_nothing(self, db, served):
        rt, spec, _ = served
        features, fks = warm_request(db, spec)
        rt.predict("n", features, fks)
        entries_before = rt.cache_stats("n")[0].entries
        # An in-place update to the *fact* relation: no partials there.
        fact = spec.resolve(db).fact
        row = fact.scan()[0].copy()
        db.update_rows(fact.name, np.array([0]), row[None, :])
        assert rt.cache_stats("n")[0].entries == entries_before
        assert rt.model("n").invalidated_rids == 0

    def test_closed_runtime_stops_listening(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        rt = serve_runtime(db)
        rt.register_nn("n", nn, binary_star.spec, strategy="factorized")
        features, fks = warm_request(db, binary_star.spec, n=20)
        rt.predict("n", features, fks)
        rt.close()
        bump_dimension_row(db, int(fks[0]))
        assert rt.model("n").invalidated_rids == 0


class TestConcurrentUpdates:
    def test_serving_while_updating_never_crashes_and_settles_exact(
        self, db, served
    ):
        """Dimension churn under live traffic: requests must never
        error (no torn pages, no stale-partial leaks), and once the
        churn stops predictions must match the post-update oracle."""
        import threading

        rt, spec, nn = served
        features, fks = warm_request(db, spec)
        relation = db["R1"]
        victims = np.unique(fks)[:4]
        positions = relation.positions_of_keys(victims)
        errors = []
        stop = threading.Event()

        def churn():
            try:
                for round_no in range(25):
                    rows = relation.scan()[positions].copy()
                    rows[:, 1:] += 0.1 * (round_no + 1)
                    db.update_rows("R1", positions, rows)
            except BaseException as error:  # pragma: no cover
                errors.append(error)
            finally:
                stop.set()

        def traffic():
            while not stop.is_set():
                try:
                    rt.predict("n", features, fks, timeout=30.0)
                except BaseException as error:  # pragma: no cover
                    errors.append(error)
                    return

        threads = [threading.Thread(target=churn)] + [
            threading.Thread(target=traffic) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        settled = rt.predict("n", features, fks)
        oracle = predict_nn(
            db, spec, nn, features, fks, strategy="materialized"
        )
        np.testing.assert_allclose(settled, oracle, rtol=1e-9, atol=1e-9)


class TestCatalogUpdateContract:
    def test_row_version_advances_per_update(self, db, served):
        _, spec, _ = served
        assert db.row_version("R1") == 0
        _, fks = warm_request(db, spec, n=5)
        bump_dimension_row(db, int(fks[0]))
        bump_dimension_row(db, int(fks[1]))
        assert db.row_version("R1") == 2

    def test_key_changing_update_rejected(self, db, served):
        _, spec, _ = served
        relation = db["R1"]
        row = relation.scan()[0].copy()
        row[0] += 1  # tamper with the primary key
        with pytest.raises(StorageError, match="primary-key"):
            db.update_rows("R1", np.array([0]), row[None, :])

    def test_update_persists_through_buffer_pool(self, db, served):
        rt, spec, _ = served
        features, fks = warm_request(db, spec)
        rt.predict("n", features, fks)   # pages now resident in the pool
        victim = int(fks[0])
        bump_dimension_row(db, victim, delta=3.5)
        relation = db["R1"]
        position = relation.positions_of_keys(np.array([victim]))[0]
        fresh = relation.scan()[position]
        lookup = rt.model("n").factorized.lookups[0]
        via_pool = lookup.features_for(np.array([victim]))[0]
        np.testing.assert_array_equal(
            via_pool, relation.project_features(fresh[None, :])[0]
        )
