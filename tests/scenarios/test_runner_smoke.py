"""End-to-end scenario runs at toy scale: the tier-1 smoke for the
harness.  The full adaptation suite lives in benchmarks/scenarios/ and
runs nightly; these scenarios are sized to finish in seconds."""

import pytest

from repro.errors import ModelError
from repro.scenarios import (
    ScenarioSpec,
    check_result,
    run_scenario,
    summarize_trials,
)

TOY = {
    "name": "toy_steady",
    "trials": 1,
    "seed": 5,
    "workload": {
        "n_r": 24, "tuple_ratio": 4, "d_s": 3, "d_r": 4, "join_arity": 1,
    },
    "model": {"kind": "gmm", "width": 2, "epochs": 1,
              "strategy": "factorized"},
    "runtime": {"workers": 1, "max_batch_rows": 64, "max_wait_ms": 0.2},
    "phases": [
        {"name": "steady", "requests": 4, "request_rows": 32, "skew": 0.5},
    ],
    "assertions": [
        {"kind": "outputs_bit_exact"},
        {"kind": "counter_min", "metric": "repro_requests_total", "min": 4},
        {"kind": "span_count_min", "span": "serve.batch", "min": 1},
    ],
}


class TestRunnerSmoke:
    def test_toy_scenario_passes_end_to_end(self):
        result = run_scenario(ScenarioSpec.from_dict(TOY))
        assert result.passed, "\n".join(result.failures())
        check_result(result)  # must not raise
        [trial] = result.trials
        [phase] = trial.phases
        assert phase.rows == 4 * 32
        assert phase.metrics["rows_per_sec"] > 0
        # Scenario-level windows saw every assertion evaluated.
        assert len(trial.assertions) == len(TOY["assertions"])

    def test_budget_cut_adaptation_holds_the_bound(self):
        raw = dict(TOY)
        raw["name"] = "toy_budget_cut"
        raw["runtime"] = dict(TOY["runtime"]) | {"memory_budget": 1 << 16}
        raw["phases"] = [
            {"name": "warm", "requests": 4, "request_rows": 32,
             "skew": 0.5},
            {"name": "cut", "requests": 4, "request_rows": 32,
             "skew": 0.5, "memory_budget": 8192,
             "assertions": [
                 {"kind": "gauge_max",
                  "metric": "repro_store_bytes_resident", "max": 8192},
             ]},
        ]
        result = run_scenario(ScenarioSpec.from_dict(raw))
        assert result.passed, "\n".join(result.failures())

    def test_tiered_budget_cut_lands_in_demotions(self):
        # The tiered twin of the budget-cut smoke (the full-size
        # variant is benchmarks/scenarios/adapt_budget_cut_tiered.json):
        # with a float32+spill ladder declared, the cut must surface as
        # tier demotions — rows walking down the ladder — while labels
        # stay bit-exact.  n_r is raised so the working set (~12 KiB)
        # actually exceeds the cut bound.
        raw = dict(TOY)
        raw["name"] = "toy_budget_cut_tiered"
        raw["workload"] = dict(TOY["workload"]) | {"n_r": 96}
        raw["runtime"] = dict(TOY["runtime"]) | {
            "memory_budget": 1 << 16,
            "store_tiers": ["float32", "spill"],
        }
        raw["phases"] = [
            {"name": "warm", "requests": 4, "request_rows": 32,
             "skew": 0.5},
            {"name": "cut", "requests": 4, "request_rows": 32,
             "skew": 0.5, "memory_budget": 4096,
             "assertions": [
                 {"kind": "tier_demotions_min", "min": 1},
                 {"kind": "gauge_max",
                  "metric": "repro_store_bytes_resident", "max": 4096},
                 {"kind": "outputs_bit_exact"},
             ]},
        ]
        result = run_scenario(ScenarioSpec.from_dict(raw))
        assert result.passed, "\n".join(result.failures())

    def test_tiers_without_budget_are_rejected_at_load(self):
        raw = dict(TOY)
        raw["name"] = "toy_inert_tiers"
        raw["runtime"] = dict(TOY["runtime"]) | {
            "store_tiers": ["float32"],
        }
        with pytest.raises(ModelError, match="inert"):
            ScenarioSpec.from_dict(raw)

    def test_tier_assertion_without_tiers_is_rejected_at_load(self):
        raw = dict(TOY)
        raw["name"] = "toy_ladderless_assertion"
        raw["phases"] = [
            {"name": "steady", "requests": 4, "request_rows": 32,
             "assertions": [{"kind": "tier_demotions_min", "min": 1}]},
        ]
        with pytest.raises(ModelError, match="store_tiers"):
            ScenarioSpec.from_dict(raw)

    def test_process_executor_scenario_is_bit_exact(self):
        # The multi-process smoke: same toy traffic served by two
        # worker processes must stay bit-exact against the
        # single-threaded reference and satisfy the same telemetry
        # assertions as the threaded run.
        raw = dict(TOY)
        raw["name"] = "toy_process"
        raw["runtime"] = dict(TOY["runtime"]) | {
            "workers": 2, "executor": "process",
        }
        result = run_scenario(ScenarioSpec.from_dict(raw))
        assert result.passed, "\n".join(result.failures())
        [trial] = result.trials
        assert trial.phases[0].rows == 4 * 32

    def test_failing_assertion_surfaces_in_failures(self):
        raw = dict(TOY)
        raw["name"] = "toy_unreachable_bound"
        raw["assertions"] = [
            {"kind": "counter_min",
             "metric": "repro_requests_total", "min": 10_000},
        ]
        result = run_scenario(ScenarioSpec.from_dict(raw))
        assert not result.passed
        [failure] = result.failures()
        assert "counter_min" in failure and "[FAIL]" in failure
        with pytest.raises(ModelError, match="toy_unreachable_bound"):
            check_result(result)

    def test_payload_shape_matches_bench_summary_contract(self):
        result = run_scenario(ScenarioSpec.from_dict(TOY))
        payload = result.to_payload()
        assert payload["scenario"] == "toy_steady"
        assert payload["passed"] is True
        assert payload["trials"] == 1
        summary = payload["summary"]
        assert "scenario.rows_per_sec" in summary
        assert "phase:steady.rows_per_sec" in summary
        entry = summary["scenario.rows_per_sec"]
        assert set(entry) >= {"median", "mean", "ci95", "n"}
        assert entry["n"] == 1


class TestSummaries:
    def test_median_and_ci_over_trials(self):
        class FakePhase:
            def __init__(self, value):
                self.name = "p"
                self.metrics = {"rows_per_sec": value}

        class FakeTrial:
            def __init__(self, value):
                self.metrics = {"rows_per_sec": value}
                self.phases = [FakePhase(value)]

        summary = summarize_trials([FakeTrial(v) for v in (10.0, 20.0, 30.0)])
        entry = summary["scenario.rows_per_sec"]
        assert entry["median"] == 20.0
        assert entry["mean"] == pytest.approx(20.0)
        assert entry["ci95"] > 0
        assert entry["n"] == 3
        assert summary["phase:p.rows_per_sec"]["median"] == 20.0
