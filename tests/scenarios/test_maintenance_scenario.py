"""Tier-1 toy twin of benchmarks/scenarios/adapt_online_maintenance.json:
an update storm coalesced by a batched maintainer, flushed at the phase
boundary, hot-swapped into runtime and reference — outputs stay
bit-exact and the maintenance telemetry fires."""

from repro.scenarios import ScenarioSpec, run_scenario

TOY_MAINTENANCE = {
    "name": "toy_online_maintenance",
    "trials": 1,
    "seed": 5,
    "workload": {
        "n_r": 24, "tuple_ratio": 4, "d_s": 3, "d_r": 4, "join_arity": 1,
    },
    "model": {"kind": "gmm", "width": 2, "epochs": 1,
              "strategy": "factorized"},
    "runtime": {"workers": 1, "max_batch_rows": 64, "max_wait_ms": 0.2},
    "phases": [
        {"name": "warm", "requests": 4, "request_rows": 32, "skew": 0.5},
        {"name": "storm", "requests": 4, "request_rows": 32, "skew": 0.5,
         "maintenance": {"updates": 8, "refresh": "batched"},
         "assertions": [
             {"kind": "counter_min",
              "metric": "repro_maintain_deltas_total", "min": 1},
             {"kind": "gauge_max",
              "metric": "repro_maintain_staleness_seconds", "max": 5.0},
         ]},
    ],
    "assertions": [
        {"kind": "outputs_bit_exact"},
        {"kind": "span_count_min", "span": "maintain.apply", "min": 1},
        {"kind": "counter_min", "metric": "repro_requests_total", "min": 8},
    ],
}


class TestMaintenanceScenario:
    def test_toy_maintenance_scenario_passes(self):
        result = run_scenario(ScenarioSpec.from_dict(TOY_MAINTENANCE))
        assert result.passed, "\n".join(result.failures())
        [trial] = result.trials
        warm, storm = trial.phases
        assert storm.rows == 4 * 32
        # Every assertion window was evaluated.
        assert len(storm.assertions) == 2
        assert len(trial.assertions) == len(TOY_MAINTENANCE["assertions"])

    def test_manual_refresh_scenario_defers_to_flush(self):
        raw = {k: (v.copy() if isinstance(v, (dict, list)) else v)
               for k, v in TOY_MAINTENANCE.items()}
        raw["name"] = "toy_maintenance_manual"
        raw["phases"] = [
            {"name": "storm", "requests": 4, "request_rows": 32,
             "skew": 0.5,
             "maintenance": {"updates": 6, "refresh": "manual",
                             "flush": True},
             "assertions": [
                 {"kind": "counter_min",
                  "metric": "repro_maintain_deltas_total", "min": 1},
             ]},
        ]
        raw["assertions"] = [{"kind": "outputs_bit_exact"}]
        result = run_scenario(ScenarioSpec.from_dict(raw))
        assert result.passed, "\n".join(result.failures())

    def test_storm_without_flush_leaves_fit_stale_but_consistent(self):
        raw = {k: (v.copy() if isinstance(v, (dict, list)) else v)
               for k, v in TOY_MAINTENANCE.items()}
        raw["name"] = "toy_maintenance_noflush"
        raw["phases"] = [
            {"name": "storm", "requests": 4, "request_rows": 32,
             "skew": 0.5,
             "maintenance": {"updates": 6, "refresh": "manual",
                             "flush": False}},
        ]
        # No flush: both layers keep serving the original fit over the
        # updated star — still bit-exact against each other.
        raw["assertions"] = [{"kind": "outputs_bit_exact"}]
        result = run_scenario(ScenarioSpec.from_dict(raw))
        assert result.passed, "\n".join(result.failures())
