"""ScenarioSpec validation: strict, total, and loud at load time."""

import json
from pathlib import Path

import pytest

from repro.errors import ModelError
from repro.scenarios import ScenarioSpec, load_scenario, load_scenarios

REPO_ROOT = Path(__file__).resolve().parents[2]


def base() -> dict:
    """The smallest valid scenario document."""
    return {"name": "t", "phases": [{"name": "steady"}]}


class TestDefaults:
    def test_minimal_document_fills_defaults(self):
        spec = ScenarioSpec.from_dict(base())
        assert spec.trials == 3
        assert spec.workload.n_s == spec.workload.n_r * 50
        assert spec.model.kind == "nn"
        assert spec.runtime.memory_budget is None
        assert spec.phases[0].requests == 24
        assert spec.phases[0].skew == 0.0

    def test_committed_suite_loads_and_validates(self):
        specs = load_scenarios(REPO_ROOT / "benchmarks" / "scenarios")
        names = [spec.name for spec in specs]
        assert "adapt_budget_cut" in names
        assert "adapt_skew_flip" in names
        assert "adapt_update_storm" in names
        for spec in specs:
            assert spec.trials >= 3
            assert spec.all_assertions  # a scenario must verify something


class TestUnknownKeys:
    def test_scenario_level(self):
        raw = base() | {"warmup": 3}
        with pytest.raises(ModelError, match=r"unknown key.*warmup"):
            ScenarioSpec.from_dict(raw)

    def test_workload_level(self):
        raw = base() | {"workload": {"n_rows": 10}}
        with pytest.raises(ModelError, match="scenario.workload"):
            ScenarioSpec.from_dict(raw)

    def test_runtime_level(self):
        raw = base() | {"runtime": {"theads": 4}}
        with pytest.raises(ModelError, match="scenario.runtime"):
            ScenarioSpec.from_dict(raw)

    def test_phase_level(self):
        raw = base()
        raw["phases"][0]["reqests"] = 9
        with pytest.raises(ModelError, match=r"phases\[0\]"):
            ScenarioSpec.from_dict(raw)

    def test_assertion_level(self):
        raw = base()
        raw["phases"][0]["assertions"] = [
            {"kind": "hit_rate_min", "min": 0.5, "mim": 0.6}
        ]
        with pytest.raises(ModelError, match="mim"):
            ScenarioSpec.from_dict(raw)


class TestRanges:
    def test_fk_skew_out_of_range(self):
        raw = base() | {"workload": {"fk_skew": 5.0}}
        with pytest.raises(ModelError, match=r"Zipf exponent"):
            ScenarioSpec.from_dict(raw)

    def test_phase_skew_negative(self):
        raw = base()
        raw["phases"][0]["skew"] = -0.5
        with pytest.raises(ModelError, match=r"Zipf exponent"):
            ScenarioSpec.from_dict(raw)

    def test_non_positive_knobs(self):
        raw = base() | {"trials": 0}
        with pytest.raises(ModelError, match="trials"):
            ScenarioSpec.from_dict(raw)
        raw = base() | {"runtime": {"workers": -1}}
        with pytest.raises(ModelError, match="workers"):
            ScenarioSpec.from_dict(raw)

    def test_bad_executor(self):
        raw = base() | {"runtime": {"executor": "fiber"}}
        with pytest.raises(
            ModelError, match="'thread' or 'process'"
        ):
            ScenarioSpec.from_dict(raw)

    def test_executor_defaults_to_thread(self):
        assert ScenarioSpec.from_dict(base()).runtime.executor == "thread"

    def test_bad_admission_policy(self):
        raw = base() | {"runtime": {"admission": "clock"}}
        with pytest.raises(ModelError, match="admission"):
            ScenarioSpec.from_dict(raw)


class TestCrossFieldContradictions:
    def test_budget_too_small_for_worker_pool(self):
        raw = base() | {
            "runtime": {"workers": 2, "memory_budget": 4096}
        }
        with pytest.raises(ModelError, match="contradicts"):
            ScenarioSpec.from_dict(raw)

    def test_phase_cut_below_worker_floor(self):
        raw = base() | {
            "runtime": {"workers": 2, "memory_budget": 1 << 20}
        }
        raw["phases"][0]["memory_budget"] = 100
        with pytest.raises(ModelError, match="contradicts"):
            ScenarioSpec.from_dict(raw)

    def test_phase_budget_without_initial_budget(self):
        raw = base()
        raw["phases"][0]["memory_budget"] = 1 << 20
        with pytest.raises(ModelError, match="initial"):
            ScenarioSpec.from_dict(raw)

    def test_duplicate_phase_names(self):
        raw = base()
        raw["phases"] = [{"name": "p"}, {"name": "p"}]
        with pytest.raises(ModelError, match="duplicate phase"):
            ScenarioSpec.from_dict(raw)

    def test_empty_phases(self):
        raw = base() | {"phases": []}
        with pytest.raises(ModelError, match="non-empty"):
            ScenarioSpec.from_dict(raw)

    def test_bit_exact_rejected_for_adaptive_strategy(self):
        raw = base() | {
            "model": {"kind": "gmm", "strategy": "adaptive"},
            "assertions": [{"kind": "outputs_bit_exact"}],
        }
        with pytest.raises(ModelError, match="fixed serving strategy"):
            ScenarioSpec.from_dict(raw)

    def test_bit_exact_rejected_for_nn_outputs(self):
        # BLAS summation order varies with micro-batch shape, so
        # continuous NN outputs are only float-close, never bit-exact.
        raw = base() | {
            "model": {"kind": "nn", "strategy": "factorized"},
            "assertions": [{"kind": "outputs_bit_exact"}],
        }
        with pytest.raises(ModelError, match="BLAS"):
            ScenarioSpec.from_dict(raw)

    def test_bit_exact_allowed_for_fixed_gmm(self):
        raw = base() | {
            "model": {"kind": "gmm", "strategy": "factorized"},
            "assertions": [{"kind": "outputs_bit_exact"}],
        }
        spec = ScenarioSpec.from_dict(raw)
        assert spec.assertions[0].kind == "outputs_bit_exact"

    def test_span_assertion_rejected_in_phase_scope(self):
        # Span quantile reservoirs are cumulative; they cannot be
        # windowed per phase.
        raw = base()
        raw["phases"][0]["assertions"] = [
            {"kind": "span_p95_max", "span": "serve.batch", "max_s": 1.0}
        ]
        with pytest.raises(ModelError, match="scenario-level"):
            ScenarioSpec.from_dict(raw)


class TestAssertionParsing:
    def test_unknown_kind(self):
        raw = base() | {"assertions": [{"kind": "latency_max"}]}
        with pytest.raises(ModelError, match="unknown assertion kind"):
            ScenarioSpec.from_dict(raw)

    def test_missing_required_field(self):
        raw = base() | {"assertions": [{"kind": "quantile_max", "q": 0.95}]}
        with pytest.raises(ModelError, match="requires field"):
            ScenarioSpec.from_dict(raw)

    def test_q_out_of_open_interval(self):
        raw = base() | {
            "assertions": [
                {
                    "kind": "quantile_max",
                    "metric": "m",
                    "q": 1.0,
                    "max_s": 1.0,
                }
            ]
        }
        with pytest.raises(ModelError, match=r"q must be in \(0, 1\)"):
            ScenarioSpec.from_dict(raw)

    def test_band_min_above_max(self):
        raw = base() | {
            "assertions": [
                {"kind": "dedup_ratio_band", "min": 3.0, "max": 2.0}
            ]
        }
        with pytest.raises(ModelError, match="exceeds max"):
            ScenarioSpec.from_dict(raw)

    def test_labels_must_be_string_mapping(self):
        raw = base() | {
            "assertions": [
                {
                    "kind": "counter_max",
                    "metric": "m",
                    "max": 1,
                    "labels": {"model": 3},
                }
            ]
        }
        with pytest.raises(ModelError, match="labels"):
            ScenarioSpec.from_dict(raw)


class TestLoading:
    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ModelError, match="broken.json"):
            load_scenario(path)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ModelError, match="no \\*.json"):
            load_scenarios(tmp_path)

    def test_load_scenario_round_trip(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(base()))
        assert load_scenario(path).name == "t"
