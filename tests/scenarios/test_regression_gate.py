"""tools/regression_gate.py: direction inference, tolerances, floors,
history guards — driven through main() exactly as the nightly job runs
it."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench_summary  # noqa: E402
import regression_gate  # noqa: E402
from regression_gate import direction, parse_override  # noqa: E402


def overhead_run(stamp: float, off_s=1.0, on_s=1.05) -> dict:
    return {
        "bench": "telemetry_overhead",
        "generated_at": stamp,
        "off_s": off_s,
        "on_s": on_s,
        "ratio": on_s / off_s,
    }


def write_history(histories: Path, name: str, runs: list[dict]) -> None:
    histories.joinpath(name).write_text(json.dumps({
        "schema_version": bench_summary.SCHEMA_VERSION,
        "bench": runs[0].get("bench", ""),
        "runs": runs,
        "summary": {},
    }))


def write_fresh(results: Path, raw_name: str, payload: dict) -> None:
    results.joinpath(raw_name).write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path):
    results = tmp_path / "results"
    histories = tmp_path / "histories"
    results.mkdir()
    histories.mkdir()
    return results, histories


def gate(results, histories, *extra) -> int:
    return regression_gate.main([
        "--results-dir", str(results),
        "--histories-dir", str(histories),
        *extra,
    ])


class TestDirectionInference:
    def test_latency_suffixes_are_lower_is_better(self):
        assert direction("warm.seconds") == "lower"
        assert direction("rr50.nn_f_s") == "lower"
        assert direction("adapt.phase:storm.queue_wait_p95_s") == "lower"
        assert direction("ratio") == "lower"

    def test_throughput_names_are_higher_is_better(self):
        assert direction("baseline_rows_per_sec") == "higher"
        assert direction("w4.b512.speedup") == "higher"
        assert direction("shared.hit_rate") == "higher"

    def test_everything_else_is_informational(self):
        assert direction("budgeted.peak_bytes") is None
        assert direction("shared.caches") is None
        assert direction("scenario.cross_evictions") is None


class TestOverrides:
    def test_parse_override(self):
        assert parse_override("BENCH_overhead.json.ratio=0.1") == (
            "BENCH_overhead.json.ratio", 0.1,
        )

    @pytest.mark.parametrize("bad", ["no-equals", "x=notanumber", "y=-1"])
    def test_parse_override_rejects(self, bad):
        with pytest.raises(Exception):
            parse_override(bad)


class TestGate:
    def test_clean_run_within_tolerance_passes(self, dirs, capsys):
        results, histories = dirs
        write_history(histories, "BENCH_overhead.json", [
            overhead_run(float(i)) for i in range(3)
        ])
        write_fresh(
            results, "telemetry_overhead.json",
            overhead_run(99.0, off_s=1.1, on_s=1.2),
        )
        assert gate(results, histories) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_doubled_latency_fails(self, dirs, capsys):
        results, histories = dirs
        write_history(histories, "BENCH_overhead.json", [
            overhead_run(float(i)) for i in range(3)
        ])
        write_fresh(
            results, "telemetry_overhead.json",
            overhead_run(99.0, off_s=2.0, on_s=2.1),
        )
        assert gate(results, histories, "--floor", "0") == 1
        out = capsys.readouterr().out
        assert "REGRESSION BENCH_overhead.json.off_s" in out

    def test_throughput_drop_fails(self, dirs, capsys):
        results, histories = dirs

        def runtime_run(stamp, rps):
            return {
                "bench": "runtime_scaling",
                "generated_at": stamp,
                "baseline_rows_per_sec": rps,
                "configs": [],
            }

        write_history(histories, "BENCH_runtime.json", [
            runtime_run(float(i), 1000.0) for i in range(3)
        ])
        write_fresh(
            results, "runtime_scaling.json", runtime_run(99.0, 100.0)
        )
        assert gate(results, histories) == 1
        out = capsys.readouterr().out
        assert "REGRESSION BENCH_runtime.json.baseline_rows_per_sec" in out

    def test_thin_history_accumulates_without_gating(self, dirs, capsys):
        results, histories = dirs
        write_history(
            histories, "BENCH_overhead.json", [overhead_run(0.0)]
        )
        write_fresh(
            results, "telemetry_overhead.json",
            overhead_run(99.0, off_s=50.0, on_s=60.0),  # wildly slower
        )
        assert gate(results, histories) == 0
        assert "accumulating history" in capsys.readouterr().out

    def test_fresh_stamp_excluded_from_its_own_baseline(self, dirs):
        results, histories = dirs
        # The summary step already appended the fresh (regressed) run;
        # gating right after must not compare the run against itself.
        fresh = overhead_run(99.0, off_s=3.0, on_s=3.2)
        write_history(histories, "BENCH_overhead.json", [
            overhead_run(0.0), overhead_run(1.0), overhead_run(2.0), fresh,
        ])
        write_fresh(results, "telemetry_overhead.json", fresh)
        assert gate(results, histories, "--floor", "0") == 1

    def test_floor_forgives_sub_resolution_timers(self, dirs):
        results, histories = dirs
        # 200µs baseline jittering 10× is meaningless; the floor
        # absorbs it.  Dropping the floor exposes the ratio.
        write_history(histories, "BENCH_overhead.json", [
            overhead_run(float(i), off_s=0.0002, on_s=0.0002)
            for i in range(3)
        ])
        write_fresh(
            results, "telemetry_overhead.json",
            overhead_run(99.0, off_s=0.002, on_s=0.002),
        )
        assert gate(results, histories, "--floor", "0.01",
                    "--override", "*.ratio=10") == 0
        assert gate(results, histories, "--floor", "0",
                    "--override", "*.ratio=10") == 1

    def test_override_loosens_one_metric(self, dirs):
        results, histories = dirs
        write_history(histories, "BENCH_overhead.json", [
            overhead_run(float(i)) for i in range(3)
        ])
        write_fresh(
            results, "telemetry_overhead.json",
            overhead_run(99.0, off_s=2.0, on_s=2.1),
        )
        args = ("--floor", "0",
                "--override", "BENCH_overhead.json.*_s=2.0",
                "--override", "BENCH_overhead.json.ratio=2.0")
        assert gate(results, histories, *args) == 0

    def test_nothing_fresh_passes(self, dirs, capsys):
        results, histories = dirs
        assert gate(results, histories) == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_unknown_schema_version_refuses_and_fails(self, dirs, capsys):
        results, histories = dirs
        histories.joinpath("BENCH_overhead.json").write_text(json.dumps({
            "schema_version": 999, "runs": [overhead_run(0.0)] * 3,
        }))
        write_fresh(
            results, "telemetry_overhead.json", overhead_run(99.0)
        )
        assert gate(results, histories) == 1
        assert "refusing to gate" in capsys.readouterr().out


class TestBenchSummary:
    def test_append_is_idempotent_by_stamp(self, dirs, capsys):
        results, histories = dirs
        write_fresh(
            results, "telemetry_overhead.json", overhead_run(7.0)
        )
        argv = [
            "--results-dir", str(results), "--out-dir", str(histories),
        ]
        assert bench_summary.main(argv) == 0
        assert bench_summary.main(argv) == 0
        history = json.loads(
            histories.joinpath("BENCH_overhead.json").read_text()
        )
        assert len(history["runs"]) == 1
        assert history["summary"]["median"]["ratio"] == pytest.approx(1.05)

    def test_keep_caps_retained_runs(self, dirs):
        results, histories = dirs
        for stamp in range(5):
            write_fresh(
                results, "telemetry_overhead.json",
                overhead_run(float(stamp)),
            )
            bench_summary.main([
                "--results-dir", str(results),
                "--out-dir", str(histories),
                "--keep", "3",
            ])
        history = json.loads(
            histories.joinpath("BENCH_overhead.json").read_text()
        )
        assert [r["generated_at"] for r in history["runs"]] == [2.0, 3.0, 4.0]
