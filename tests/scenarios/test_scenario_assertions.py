"""Assertion evaluation semantics over hand-built telemetry windows."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.scenarios import (
    WindowContext,
    evaluate_all,
    evaluate_assertion,
    parse_assertions,
)


def spec(raw, scope="scenario"):
    [parsed] = parse_assertions([raw], "test", scope=scope)
    return parsed


def traffic_window() -> WindowContext:
    """A window with cache traffic, residency, dedup, and queue waits."""
    registry = MetricsRegistry(enabled=True)
    hits = registry.counter(
        "repro_cache_hits_total", labelnames=("cache",)
    )
    hits.labels(cache="a").inc(6)
    hits.labels(cache="b").inc(2)
    misses = registry.counter(
        "repro_cache_misses_total", labelnames=("cache",)
    )
    misses.labels(cache="a").inc(1)
    misses.labels(cache="b").inc(1)
    registry.gauge("repro_store_bytes_resident").set(4096.0)
    registry.gauge("repro_model_dedup_ratio").set(2.5)
    wait = registry.histogram(
        "repro_queue_wait_seconds", buckets=(0.001, 0.01, 0.1)
    )
    for _ in range(19):
        wait.observe(0.0005)
    wait.observe(0.05)
    return WindowContext(
        name="phase:test",
        delta=registry.snapshot(),
        span_aggregates={
            "serve.batch": {
                "count": 8, "sum_s": 0.4, "p50_s": 0.04, "p95_s": 0.09,
            },
        },
        outputs=np.array([1.0, 2.0, 3.0]),
        expected=np.array([1.0, 2.0, 3.0]),
    )


class TestCountersAndGauges:
    def test_counter_max_sums_the_family(self):
        window = traffic_window()
        result = evaluate_assertion(
            spec({"kind": "counter_max",
                  "metric": "repro_cache_hits_total", "max": 8}),
            window,
        )
        assert result.passed and result.observed == 8.0
        result = evaluate_assertion(
            spec({"kind": "counter_max",
                  "metric": "repro_cache_hits_total", "max": 7}),
            window,
        )
        assert not result.passed

    def test_labels_filter_by_superset(self):
        result = evaluate_assertion(
            spec({"kind": "counter_min",
                  "metric": "repro_cache_hits_total", "min": 6,
                  "labels": {"cache": "a"}}),
            traffic_window(),
        )
        assert result.passed and result.observed == 6.0

    def test_absent_family_fails_loudly(self):
        result = evaluate_assertion(
            spec({"kind": "counter_max",
                  "metric": "repro_cache_hit_total", "max": 10}),
            traffic_window(),
        )
        assert not result.passed
        assert result.observed is None
        assert "no samples" in result.detail

    def test_counter_kind_does_not_match_gauges(self):
        # A gauge family must not satisfy a counter assertion.
        result = evaluate_assertion(
            spec({"kind": "counter_max",
                  "metric": "repro_store_bytes_resident", "max": 1e9}),
            traffic_window(),
        )
        assert not result.passed and result.observed is None

    def test_gauge_bounds_read_the_window_end(self):
        window = traffic_window()
        assert evaluate_assertion(
            spec({"kind": "gauge_max",
                  "metric": "repro_store_bytes_resident", "max": 4096}),
            window,
        ).passed
        assert not evaluate_assertion(
            spec({"kind": "gauge_min",
                  "metric": "repro_store_bytes_resident", "min": 5000}),
            window,
        ).passed


class TestDerivedMetrics:
    def test_hit_rate_over_the_window(self):
        result = evaluate_assertion(
            spec({"kind": "hit_rate_min", "min": 0.75}),
            traffic_window(),
        )
        assert result.passed
        assert result.observed == pytest.approx(0.8)

    def test_hit_rate_with_zero_lookups_fails(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("repro_cache_hits_total").inc(0)
        registry.counter("repro_cache_misses_total").inc(0)
        result = evaluate_assertion(
            spec({"kind": "hit_rate_min", "min": 0.0}),
            WindowContext(name="w", delta=registry.snapshot()),
        )
        assert not result.passed
        assert "no cache lookups" in result.detail

    def test_quantile_max_over_merged_histogram(self):
        window = traffic_window()
        # 19/20 observations sit under 1ms; p90 is inside that bucket.
        assert evaluate_assertion(
            spec({"kind": "quantile_max",
                  "metric": "repro_queue_wait_seconds",
                  "q": 0.9, "max_s": 0.001}),
            window,
        ).passed
        # The straggler drags p99 into the 0.1s bucket.
        assert not evaluate_assertion(
            spec({"kind": "quantile_max",
                  "metric": "repro_queue_wait_seconds",
                  "q": 0.99, "max_s": 0.001}),
            window,
        ).passed

    def test_dedup_ratio_band(self):
        window = traffic_window()
        assert evaluate_assertion(
            spec({"kind": "dedup_ratio_band", "min": 2.0, "max": 3.0}),
            window,
        ).passed
        assert not evaluate_assertion(
            spec({"kind": "dedup_ratio_band", "min": 3.0, "max": 9.0}),
            window,
        ).passed


class TestSpansAndOutputs:
    def test_span_aggregate_bounds(self):
        window = traffic_window()
        assert evaluate_assertion(
            spec({"kind": "span_count_min",
                  "span": "serve.batch", "min": 8}),
            window,
        ).passed
        assert evaluate_assertion(
            spec({"kind": "span_p95_max",
                  "span": "serve.batch", "max_s": 0.1}),
            window,
        ).passed
        missing = evaluate_assertion(
            spec({"kind": "span_count_min", "span": "ghost", "min": 1}),
            window,
        )
        assert not missing.passed and "no samples" in missing.detail

    def test_outputs_bit_exact(self):
        window = traffic_window()
        assert evaluate_assertion(
            spec({"kind": "outputs_bit_exact"}), window
        ).passed
        window.outputs = np.nextafter(window.outputs, np.inf)
        assert not evaluate_assertion(
            spec({"kind": "outputs_bit_exact"}), window
        ).passed

    def test_outputs_close_honours_tolerance(self):
        window = traffic_window()
        window.outputs = window.expected + 1e-12
        assert evaluate_assertion(
            spec({"kind": "outputs_close"}), window
        ).passed
        assert not evaluate_assertion(
            spec({"kind": "outputs_close", "rtol": 1e-15, "atol": 1e-15}),
            window,
        ).passed

    def test_outputs_missing_reference_fails(self):
        window = traffic_window()
        window.expected = None
        result = evaluate_assertion(
            spec({"kind": "outputs_bit_exact"}), window
        )
        assert not result.passed
        assert "no reference outputs" in result.detail


class TestEvaluateAll:
    def test_results_carry_window_and_describe(self):
        window = traffic_window()
        assertions = parse_assertions(
            [
                {"kind": "hit_rate_min", "min": 0.75},
                {"kind": "gauge_max",
                 "metric": "repro_store_bytes_resident", "max": 1},
            ],
            "test",
            scope="phase",
        )
        results = evaluate_all(assertions, window)
        assert [r.passed for r in results] == [True, False]
        assert all(r.window == "phase:test" for r in results)
        assert results[0].describe().startswith("[PASS] phase:test:")
        assert results[1].describe().startswith("[FAIL]")
