"""Deterministic GMM initialization."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.gmm.init import initial_params, kmeans_plusplus_centers


class TestKMeansPlusPlus:
    def test_centers_come_from_data(self, rng):
        data = rng.normal(size=(50, 3))
        centers = kmeans_plusplus_centers(
            data, 4, np.random.default_rng(0)
        )
        for center in centers:
            assert any(
                np.allclose(center, row) for row in data
            ), "center must be a data point"

    def test_too_few_samples(self, rng):
        with pytest.raises(ModelError):
            kmeans_plusplus_centers(
                rng.normal(size=(2, 3)), 5, np.random.default_rng(0)
            )

    def test_spreads_over_clusters(self, rng):
        # Two well-separated blobs: k-means++ should pick one from each.
        a = rng.normal(size=(30, 2))
        b = rng.normal(size=(30, 2)) + 100
        data = np.vstack([a, b])
        centers = kmeans_plusplus_centers(
            data, 2, np.random.default_rng(1)
        )
        sides = centers[:, 0] > 50
        assert sides[0] != sides[1]

    def test_degenerate_identical_points(self):
        data = np.ones((10, 2))
        centers = kmeans_plusplus_centers(
            data, 3, np.random.default_rng(0)
        )
        np.testing.assert_array_equal(centers, np.ones((3, 2)))


class TestInitialParams:
    def test_deterministic_for_seed(self, rng):
        sample = rng.normal(size=(100, 4))
        a = initial_params(sample, 3, seed=9)
        b = initial_params(sample, 3, seed=9)
        assert a.allclose(b)

    def test_seed_changes_init(self, rng):
        sample = rng.normal(size=(100, 4))
        a = initial_params(sample, 3, seed=1)
        b = initial_params(sample, 3, seed=2)
        assert not np.allclose(a.means, b.means)

    def test_uniform_weights(self, rng):
        params = initial_params(rng.normal(size=(50, 2)), 4, seed=0)
        np.testing.assert_allclose(params.weights, 0.25)

    def test_shared_diagonal_covariance(self, rng):
        sample = rng.normal(size=(200, 3)) * np.array([1.0, 2.0, 3.0])
        params = initial_params(sample, 2, seed=0)
        np.testing.assert_allclose(
            params.covariances[0], params.covariances[1]
        )
        off_diagonal = params.covariances[0] - np.diag(
            np.diag(params.covariances[0])
        )
        np.testing.assert_array_equal(off_diagonal, 0)
        np.testing.assert_allclose(
            np.diag(params.covariances[0]),
            sample.var(axis=0),
            rtol=1e-10,
        )

    def test_random_method(self, rng):
        sample = rng.normal(size=(50, 2))
        params = initial_params(sample, 3, seed=0, method="random")
        for mean in params.means:
            assert any(np.allclose(mean, row) for row in sample)

    def test_unknown_method(self, rng):
        with pytest.raises(ModelError, match="unknown init"):
            initial_params(rng.normal(size=(10, 2)), 2, method="magic")

    def test_invalid_component_count(self, rng):
        with pytest.raises(ModelError):
            initial_params(rng.normal(size=(10, 2)), 0)

    def test_variance_floor(self):
        sample = np.zeros((10, 2))
        params = initial_params(sample, 2, reg_covar=1e-4)
        assert (np.diag(params.covariances[0]) >= 1e-4).all()
