"""The Section V-A/V-B cost formulas, checked against measured I/O."""

import math
import warnings

import pytest

from repro.data.synthetic import StarSchemaConfig, generate_star
from repro.errors import ModelError
from repro.gmm.algorithms import fit_m_gmm, fit_s_gmm
from repro.gmm.base import EMConfig
from repro.gmm.cost_model import (
    dense_outer_cost,
    factorized_outer_cost,
    join_pass_pages,
    m_gmm_io_pages,
    outer_saving,
    outer_saving_rate,
    s_gmm_io_pages,
    streaming_wins_block_size,
)


class TestIOFormulas:
    def test_join_pass(self):
        assert join_pass_pages(10, 100, 4) == 10 + 3 * 100

    def test_join_pass_single_block(self):
        assert join_pass_pages(10, 100, 64) == 110

    def test_m_gmm_total(self):
        # join + materialize + 3 reads per iteration.
        assert m_gmm_io_pages(10, 100, 150, 64, 2) == 110 + 150 + 900

    def test_s_gmm_total(self):
        assert s_gmm_io_pages(10, 100, 64, 2) == 6 * 110

    def test_validation(self):
        with pytest.raises(ModelError):
            join_pass_pages(0, 10, 1)
        with pytest.raises(ModelError):
            m_gmm_io_pages(1, 1, 0, 1, 1)
        with pytest.raises(ModelError):
            s_gmm_io_pages(1, 1, 1, 0)

    def test_crossover_formula(self):
        """At the crossover block size, the two costs are equal (up to
        the ceil in the join term)."""
        pages_r, pages_s, pages_t, iterations = 8, 200, 240, 3
        crossover = streaming_wins_block_size(
            pages_r, pages_s, pages_t, iterations
        )
        # Strictly above the crossover S-GMM is cheaper.
        above = max(1, math.ceil(crossover * 1.5))
        assert s_gmm_io_pages(
            pages_r, pages_s, above, iterations
        ) <= m_gmm_io_pages(pages_r, pages_s, pages_t, above, iterations)

    def test_crossover_infinite_when_t_too_small(self):
        assert streaming_wins_block_size(100, 10, 1, 1) == math.inf


class TestMeasuredIOMatchesFormulas:
    @pytest.fixture
    def star(self, tiny_db):
        config = StarSchemaConfig.binary(
            n_s=400, n_r=24, d_s=2, d_r=3, seed=3
        )
        return generate_star(tiny_db, config)

    @pytest.mark.parametrize("block_pages", [1, 2, 8])
    def test_s_gmm_measured(self, tiny_db, star, block_pages):
        iterations = 2
        config = EMConfig(
            n_components=2, max_iter=iterations, tol=0.0, seed=1,
            init_sample_size=10_000,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_s_gmm(
                db=tiny_db, spec=star.spec, config=config,
                block_pages=block_pages,
            )
        pages_r = tiny_db["R1"].npages
        pages_s = tiny_db["S"].npages
        expected = s_gmm_io_pages(
            pages_r, pages_s, block_pages, iterations
        )
        # One extra join pass feeds the parameter initialization.
        expected += join_pass_pages(pages_r, pages_s, block_pages)
        assert result.io.pages_read == expected

    def test_m_gmm_measured(self, tiny_db, star):
        iterations, block_pages = 2, 4
        config = EMConfig(
            n_components=2, max_iter=iterations, tol=0.0, seed=1,
            init_sample_size=10_000,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_m_gmm(
                db=tiny_db, spec=star.spec, config=config,
                block_pages=block_pages,
            )
        pages_r = tiny_db["R1"].npages
        pages_s = tiny_db["S"].npages
        pages_t = result.extra["table_pages"]
        # The Section V-A formula counts the |T| materialization as a
        # write; compare total page I/O, plus one extra read of T that
        # feeds parameter initialization.
        expected_total = m_gmm_io_pages(
            pages_r, pages_s, pages_t, block_pages, iterations
        ) + pages_t
        assert (
            result.io.pages_read + result.io.pages_written
            == expected_total
        )
        assert result.io.pages_written == pages_t
        assert result.io.pages_read == expected_total - pages_t


class TestComputeFormulas:
    def test_dense_cost(self):
        cost = dense_outer_cost(n_s=1000, d_s=5, d_r=15)
        assert cost.subtractions == 1000 * 20
        assert cost.multiplications == 1000 * 400

    def test_factorized_cost(self):
        cost = factorized_outer_cost(n_s=1000, n_r=100, d_s=5, d_r=15)
        assert cost.subtractions == 1000 * 5 + 100 * 15
        assert cost.multiplications == 1000 * (25 + 150) + 100 * 225

    def test_saving_is_difference(self):
        n_s, n_r, d_s, d_r = 5000, 50, 5, 10
        dense = dense_outer_cost(n_s, d_s, d_r).time(2.0, 3.0)
        factorized = factorized_outer_cost(n_s, n_r, d_s, d_r).time(
            2.0, 3.0
        )
        assert outer_saving(n_s, n_r, d_s, d_r, 2.0, 3.0) == pytest.approx(
            dense - factorized
        )

    def test_saving_closed_form(self):
        # Δτ = (n_S − n_R)·d_R·(τ_s + d_R·τ_m) — Section V-B.
        assert outer_saving(1000, 100, 5, 10, 1.0, 1.0) == 900 * 10 * 11

    def test_rate_increases_with_dr(self):
        rates = [
            outer_saving_rate(10_000, 100, 5, d_r)
            for d_r in (2, 5, 10, 20, 50)
        ]
        assert rates == sorted(rates)

    def test_rate_increases_with_tuple_ratio(self):
        rates = [
            outer_saving_rate(n_s, 100, 5, 15)
            for n_s in (1_000, 10_000, 100_000)
        ]
        assert rates == sorted(rates)

    def test_rate_bounded_by_one(self):
        assert 0 < outer_saving_rate(10**6, 10, 5, 100) < 1

    def test_no_saving_when_no_redundancy(self):
        assert outer_saving(100, 100, 5, 5) == 0
