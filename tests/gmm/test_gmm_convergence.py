"""EM behaviour: monotone likelihood, convergence, recovery."""

import warnings

import numpy as np
import pytest

from repro.data.synthetic import StarSchemaConfig, generate_star
from repro.errors import ConvergenceWarning, ModelError
from repro.gmm.algorithms import fit_f_gmm, fit_s_gmm
from repro.gmm.base import EMConfig
from repro.gmm.model import GaussianMixtureModel


@pytest.fixture
def star(db):
    config = StarSchemaConfig.binary(
        n_s=800, n_r=40, d_s=2, d_r=3, n_clusters=3, seed=21
    )
    return generate_star(db, config)


class TestLogLikelihood:
    def test_monotone_nondecreasing(self, db, star):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_f_gmm(
                db, star.spec, EMConfig(
                    n_components=3, max_iter=8, tol=0.0, seed=1
                )
            )
        history = result.log_likelihood_history
        assert len(history) == 8
        for before, after in zip(history, history[1:]):
            assert after >= before - 1e-6 * abs(before)

    def test_convergence_flag_set(self, db, star):
        result = fit_f_gmm(
            db,
            star.spec,
            EMConfig(n_components=2, max_iter=100, tol=1e-3, seed=1),
        )
        assert result.converged
        assert result.n_iter < 100

    def test_non_convergence_warns(self, db, star):
        with pytest.warns(ConvergenceWarning):
            result = fit_f_gmm(
                db,
                star.spec,
                EMConfig(n_components=3, max_iter=2, tol=1e-12, seed=1),
            )
        assert not result.converged

    def test_tol_zero_runs_all_iterations(self, db, star):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_s_gmm(
                db,
                star.spec,
                EMConfig(n_components=2, max_iter=5, tol=0.0, seed=1),
            )
        assert result.n_iter == 5


class TestModelQuality:
    def test_fitted_model_beats_init(self, db, star):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_f_gmm(
                db,
                star.spec,
                EMConfig(n_components=3, max_iter=10, tol=0.0, seed=1),
            )
        history = result.log_likelihood_history
        assert history[-1] > history[0]

    def test_weights_remain_normalized(self, db, star):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_f_gmm(
                db,
                star.spec,
                EMConfig(n_components=4, max_iter=5, tol=0.0, seed=2),
            )
        assert result.params.weights.sum() == pytest.approx(1.0)
        assert (result.params.weights > 0).all()

    def test_covariances_positive_definite(self, db, star):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_f_gmm(
                db,
                star.spec,
                EMConfig(n_components=3, max_iter=5, tol=0.0, seed=1),
            )
        for cov in result.params.covariances:
            eigenvalues = np.linalg.eigvalsh(cov)
            assert eigenvalues.min() > -1e-10

    def test_separated_mixture_recovered(self, db):
        """Three far-apart blobs must be found almost exactly."""
        from repro.storage.schema import (
            Schema, features, foreign_key, key,
        )

        rng = np.random.default_rng(5)
        n_r, n_s = 30, 1200
        # R features near zero: the structure lives in S's features.
        r_rows = np.column_stack(
            [np.arange(n_r, dtype=np.float64),
             rng.normal(scale=0.1, size=(n_r, 1))]
        )
        db.create_relation(
            "Rq", Schema([key("rid"), *features("a", 1)]), r_rows
        )
        centers = np.array([[-20.0, 0.0], [0.0, 20.0], [20.0, -20.0]])
        assignment = rng.integers(0, 3, size=n_s)
        s_feats = centers[assignment] + rng.normal(size=(n_s, 2))
        s_rows = np.column_stack(
            [
                np.arange(n_s, dtype=np.float64),
                s_feats,
                rng.integers(0, n_r, size=n_s).astype(np.float64),
            ]
        )
        db.create_relation(
            "Sq",
            Schema(
                [key("sid"), *features("x", 2), foreign_key("fk", "Rq")]
            ),
            s_rows,
        )
        from repro.join.spec import JoinSpec

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_f_gmm(
                db,
                JoinSpec.binary("Sq", "Rq"),
                # seed=1: EM is only locally optimal and seed 0 merges
                # two blobs; any seed recovering the optimum serves the
                # purpose of this test (the optimum is seed-stable 1-3).
                EMConfig(n_components=3, max_iter=30, tol=1e-6, seed=1),
            )
        model = GaussianMixtureModel(result.params)
        # Each true center must be near some learned mean (in x-space).
        learned = result.params.means[:, :2]
        for center in centers:
            distances = np.linalg.norm(learned - center, axis=1)
            assert distances.min() < 1.0
        # Hard assignments should agree with the generating labels.
        joined = np.column_stack(
            [s_feats, r_rows[s_rows[:, 3].astype(int), 1]]
        )
        predicted = model.predict(joined)
        # Cluster labels are permuted; check pairwise consistency.
        same_true = assignment[:200, None] == assignment[None, :200]
        same_predicted = predicted[:200, None] == predicted[None, :200]
        agreement = (same_true == same_predicted).mean()
        assert agreement > 0.98


class TestConfigValidation:
    def test_bad_components(self):
        with pytest.raises(ModelError):
            EMConfig(n_components=0)

    def test_bad_max_iter(self):
        with pytest.raises(ModelError):
            EMConfig(max_iter=0)

    def test_bad_tol(self):
        with pytest.raises(ModelError):
            EMConfig(tol=-1.0)

    def test_mismatched_initial_params(self, db, star):
        from repro.gmm.init import initial_params

        wrong = initial_params(
            np.random.default_rng(0).normal(size=(50, 9)), 2
        )
        with pytest.raises(ModelError, match="features"):
            fit_s_gmm(
                db,
                star.spec,
                EMConfig(n_components=2, max_iter=2, tol=0.0),
                initial=wrong,
            )
