"""The paper's central claim: M-GMM, S-GMM and F-GMM are exactly the
same model — identical responsibilities, parameters, and likelihood
traces at every iteration, for binary and multi-way joins."""

import warnings

import numpy as np
import pytest

from repro.data.synthetic import (
    DimensionSpec,
    StarSchemaConfig,
    generate_star,
)
from repro.gmm.algorithms import fit_f_gmm, fit_m_gmm, fit_s_gmm
from repro.gmm.base import EMConfig
from repro.gmm.engines import DenseEMEngine, FactorizedEMEngine
from repro.gmm.model import ComponentPrecisions
from repro.join.factorized import FactorizedJoin
from repro.join.stream import StreamingJoin


@pytest.fixture(autouse=True)
def _silence_convergence_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture
def em_config():
    return EMConfig(n_components=3, max_iter=4, tol=0.0, seed=2)


class TestBinaryExactness:
    @pytest.fixture
    def star(self, db):
        config = StarSchemaConfig.binary(
            n_s=600, n_r=30, d_s=3, d_r=5, seed=13
        )
        return generate_star(db, config)

    def test_all_three_strategies_identical(self, db, star, em_config):
        m = fit_m_gmm(db, star.spec, em_config, block_pages=2)
        s = fit_s_gmm(db, star.spec, em_config, block_pages=2)
        f = fit_f_gmm(db, star.spec, em_config, block_pages=2)
        assert m.params.allclose(s.params)
        assert s.params.allclose(f.params)
        np.testing.assert_allclose(
            m.log_likelihood_history, s.log_likelihood_history, rtol=1e-9
        )
        np.testing.assert_allclose(
            s.log_likelihood_history, f.log_likelihood_history, rtol=1e-9
        )

    def test_block_size_does_not_change_model(self, db, star, em_config):
        f_small = fit_f_gmm(db, star.spec, em_config, block_pages=1)
        f_large = fit_f_gmm(db, star.spec, em_config, block_pages=64)
        assert f_small.params.allclose(f_large.params)

    def test_per_batch_estep_identical(self, db, star, em_config):
        """γ agrees batch-for-batch between dense and factorized."""
        stream = StreamingJoin(db, star.spec, block_pages=2)
        fact = FactorizedJoin(db, star.spec, block_pages=2)
        dense_engine = DenseEMEngine(stream, 8)
        fact_engine = FactorizedEMEngine(fact, 8)
        from repro.gmm.init import initial_params

        params = initial_params(
            dense_engine.init_sample(500), 3, seed=0
        )
        precisions = ComponentPrecisions(params.covariances, 1e-6)
        for dense_batch, fact_batch in zip(
            dense_engine.batches(0), fact_engine.batches(0)
        ):
            gamma_dense, ll_dense = dense_engine.estep_batch(
                dense_batch, params, precisions
            )
            gamma_fact, ll_fact = fact_engine.estep_batch(
                fact_batch, params, precisions
            )
            np.testing.assert_allclose(
                gamma_dense, gamma_fact, rtol=1e-8, atol=1e-12
            )
            np.testing.assert_allclose(ll_dense, ll_fact, rtol=1e-8)


class TestMultiwayExactness:
    @pytest.fixture
    def star(self, db):
        config = StarSchemaConfig(
            n_s=500,
            d_s=2,
            dimensions=(DimensionSpec(12, 3), DimensionSpec(8, 4)),
            seed=29,
        )
        return generate_star(db, config)

    def test_three_way_strategies_identical(self, db, star, em_config):
        m = fit_m_gmm(db, star.spec, em_config, block_pages=4)
        s = fit_s_gmm(db, star.spec, em_config, block_pages=4)
        f = fit_f_gmm(db, star.spec, em_config, block_pages=4)
        assert m.params.allclose(s.params)
        assert s.params.allclose(f.params)

    def test_four_way_strategies_identical(self, db, em_config):
        config = StarSchemaConfig(
            n_s=300,
            d_s=2,
            dimensions=(
                DimensionSpec(6, 2),
                DimensionSpec(5, 3),
                DimensionSpec(4, 2),
            ),
            seed=31,
        )
        star = generate_star(db, config)
        s = fit_s_gmm(db, star.spec, em_config)
        f = fit_f_gmm(db, star.spec, em_config)
        assert s.params.allclose(f.params)


class TestResultMetadata:
    def test_algorithm_labels(self, db, em_config):
        star = generate_star(
            db, StarSchemaConfig.binary(n_s=200, n_r=10, d_s=2, d_r=2,
                                        seed=3)
        )
        assert fit_m_gmm(db, star.spec, em_config).algorithm == "M-GMM"
        assert fit_s_gmm(db, star.spec, em_config).algorithm == "S-GMM"
        assert fit_f_gmm(db, star.spec, em_config).algorithm == "F-GMM"

    def test_m_gmm_reports_materialization(self, db, em_config):
        star = generate_star(
            db, StarSchemaConfig.binary(n_s=200, n_r=10, d_s=2, d_r=2,
                                        seed=3)
        )
        result = fit_m_gmm(db, star.spec, em_config)
        assert result.extra["materialize_seconds"] >= 0
        assert result.extra["table_pages"] > 0
        assert result.io.pages_written >= result.extra["table_pages"]

    def test_m_gmm_drops_temp_table(self, db, em_config):
        star = generate_star(
            db, StarSchemaConfig.binary(n_s=200, n_r=10, d_s=2, d_r=2,
                                        seed=3)
        )
        fit_m_gmm(db, star.spec, em_config)
        assert all(
            not name.startswith("_T_") for name in db.relation_names
        )

    def test_streaming_does_not_write(self, db, em_config):
        star = generate_star(
            db, StarSchemaConfig.binary(n_s=200, n_r=10, d_s=2, d_r=2,
                                        seed=3)
        )
        for fit in (fit_s_gmm, fit_f_gmm):
            result = fit(db, star.spec, em_config)
            assert result.io.pages_written == 0

    def test_initial_params_respected(self, db, em_config):
        from repro.gmm.init import initial_params

        star = generate_star(
            db, StarSchemaConfig.binary(n_s=200, n_r=10, d_s=2, d_r=2,
                                        seed=3)
        )
        sample = np.random.default_rng(0).normal(size=(50, 4))
        init = initial_params(sample, 3, seed=0)
        s = fit_s_gmm(db, star.spec, em_config, initial=init)
        f = fit_f_gmm(db, star.spec, em_config, initial=init)
        assert s.params.allclose(f.params)
