"""GMM parameter container, precisions, and inference."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import ModelError
from repro.gmm.model import (
    ComponentPrecisions,
    GaussianMixtureModel,
    GMMParams,
    log_gaussian_from_quadform,
    log_responsibilities,
)


def make_params(rng, k=3, d=4):
    means = rng.normal(scale=3, size=(k, d))
    covs = []
    for _ in range(k):
        a = rng.normal(size=(d, d))
        covs.append(a @ a.T + d * np.eye(d))
    weights = rng.uniform(0.5, 1.5, size=k)
    weights /= weights.sum()
    return GMMParams(weights, means, np.stack(covs))


class TestGMMParams:
    def test_accessors(self, rng):
        params = make_params(rng, k=3, d=4)
        assert params.n_components == 3
        assert params.n_features == 4

    def test_weights_must_sum_to_one(self, rng):
        params = make_params(rng)
        with pytest.raises(ModelError, match="sum to 1"):
            GMMParams(
                params.weights * 2, params.means, params.covariances
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(ModelError, match="non-negative"):
            GMMParams(
                np.array([1.5, -0.5]),
                np.zeros((2, 2)),
                np.stack([np.eye(2)] * 2),
            )

    def test_shape_mismatches(self, rng):
        params = make_params(rng)
        with pytest.raises(ModelError):
            GMMParams(params.weights, params.means[:2], params.covariances)
        with pytest.raises(ModelError):
            GMMParams(
                params.weights, params.means, params.covariances[:, :2]
            )

    def test_copy_is_deep(self, rng):
        params = make_params(rng)
        clone = params.copy()
        clone.means[0, 0] += 1
        assert params.means[0, 0] != clone.means[0, 0]

    def test_allclose(self, rng):
        params = make_params(rng)
        clone = params.copy()
        assert params.allclose(clone)
        clone.means[0, 0] += 1e-3
        assert not params.allclose(clone)


class TestComponentPrecisions:
    def test_precision_is_inverse(self, rng):
        params = make_params(rng)
        precisions = ComponentPrecisions(params.covariances)
        for j in range(params.n_components):
            np.testing.assert_allclose(
                precisions.precisions[j] @ params.covariances[j],
                np.eye(params.n_features),
                atol=1e-8,
            )

    def test_log_det_matches_slogdet(self, rng):
        params = make_params(rng)
        precisions = ComponentPrecisions(params.covariances)
        for j in range(params.n_components):
            _, expected = np.linalg.slogdet(params.covariances[j])
            assert precisions.log_dets[j] == pytest.approx(expected)

    def test_regularization_added(self):
        # Singular covariance fails without reg, passes with it.
        cov = np.zeros((1, 2, 2))
        with pytest.raises(ModelError, match="positive definite"):
            ComponentPrecisions(cov)
        precisions = ComponentPrecisions(cov, reg=1e-3)
        np.testing.assert_allclose(
            precisions.precisions[0], np.eye(2) / 1e-3
        )

    def test_bad_shape(self):
        with pytest.raises(ModelError):
            ComponentPrecisions(np.zeros((2, 3, 4)))


class TestLogDensity:
    def test_matches_scipy_multivariate_normal(self, rng):
        params = make_params(rng, k=2, d=3)
        model = GaussianMixtureModel(params, reg_covar=0.0)
        data = rng.normal(size=(20, 3))
        ours = model.log_gaussians(data)
        for j in range(2):
            expected = scipy_stats.multivariate_normal(
                params.means[j], params.covariances[j]
            ).logpdf(data)
            np.testing.assert_allclose(ours[:, j], expected, rtol=1e-8)

    def test_score_samples_is_log_mixture(self, rng):
        params = make_params(rng, k=2, d=3)
        model = GaussianMixtureModel(params, reg_covar=0.0)
        data = rng.normal(size=(10, 3))
        expected = np.log(
            sum(
                params.weights[j]
                * scipy_stats.multivariate_normal(
                    params.means[j], params.covariances[j]
                ).pdf(data)
                for j in range(2)
            )
        )
        np.testing.assert_allclose(
            model.score_samples(data), expected, rtol=1e-8
        )

    def test_log_gaussian_from_quadform(self):
        # d=1, sigma=1, x=mu: log N = -0.5 log(2π).
        val = log_gaussian_from_quadform(np.array([0.0]), 0.0, 1)
        assert val[0] == pytest.approx(-0.5 * np.log(2 * np.pi))

    def test_dimension_mismatch(self, rng):
        model = GaussianMixtureModel(make_params(rng, d=4))
        with pytest.raises(ModelError):
            model.log_gaussians(rng.normal(size=(5, 3)))


class TestResponsibilities:
    def test_rows_sum_to_one(self, rng):
        params = make_params(rng)
        model = GaussianMixtureModel(params)
        gamma = model.responsibilities(rng.normal(size=(30, 4)))
        np.testing.assert_allclose(gamma.sum(axis=1), 1.0)
        assert (gamma >= 0).all()

    def test_stable_under_extreme_logits(self):
        log_gauss = np.array([[1000.0, -1000.0], [-1000.0, 1000.0]])
        gamma, log_likelihood = log_responsibilities(
            log_gauss, np.array([0.5, 0.5])
        )
        np.testing.assert_allclose(gamma, [[1, 0], [0, 1]], atol=1e-12)
        assert np.isfinite(log_likelihood).all()

    def test_predict_picks_nearest_component(self, rng):
        means = np.array([[-10.0, -10.0], [10.0, 10.0]])
        params = GMMParams(
            np.array([0.5, 0.5]), means, np.stack([np.eye(2)] * 2)
        )
        model = GaussianMixtureModel(params)
        data = np.array([[-9.0, -11.0], [11.0, 9.0], [-10.5, -9.5]])
        np.testing.assert_array_equal(model.predict(data), [0, 1, 0])


class TestSampling:
    def test_sample_shape(self, rng):
        model = GaussianMixtureModel(make_params(rng, k=2, d=3))
        data = model.sample(100, rng=rng)
        assert data.shape == (100, 3)

    def test_sample_statistics(self, rng):
        means = np.array([[0.0, 0.0]])
        params = GMMParams(
            np.array([1.0]), means, np.stack([np.eye(2)])
        )
        model = GaussianMixtureModel(params)
        data = model.sample(4000, rng=rng)
        np.testing.assert_allclose(data.mean(axis=0), [0, 0], atol=0.1)
        np.testing.assert_allclose(np.cov(data.T), np.eye(2), atol=0.15)
