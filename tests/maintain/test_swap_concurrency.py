"""Hot-swap atomicity: maintenance racing in-flight serving.

A refresh lands via ``swap_model`` while request batches are executing.
The contract on both executors: every batch's outputs come entirely
from the old fit or entirely from the new one — never a torn mix — and
monotonic cache counters carry across the swap instead of restarting.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.core.api import fit_gmm, predict_gmm, serve, serve_runtime
from repro.gmm.base import EMConfig
from repro.maintain import MaintenancePolicy, ModelMaintainer

from tests.maintain.test_delta_parity import update_dimension


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


def _requests(db, spec, n=48):
    fact = spec.resolve(db).fact
    rows = fact.scan()[:n]
    features = fact.project_features(rows)
    fks = np.column_stack(
        [
            rows[:, fact.schema.fk_position(dim.relation)]
            for dim in spec.dimensions
        ]
    ).astype(np.int64)
    return features, fks


def _two_fits(db, spec, rng):
    """Two materially different fits over the *same* final data: the
    dimension rows move first, so both oracles see one frozen star."""
    config = EMConfig(n_components=3, max_iter=4, seed=1)
    m0 = fit_gmm(db, spec, algorithm="factorized", config=config)
    for _ in range(3):
        update_dimension(db, spec, rng, count=4)
    m1 = fit_gmm(
        db, spec, algorithm="factorized",
        config=EMConfig(n_components=3, max_iter=7, seed=5),
    )
    return m0, m1


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestSwapNeverTears:
    def test_outputs_entirely_old_or_entirely_new(
        self, db, multiway_star, executor
    ):
        spec = multiway_star.spec
        rng = np.random.default_rng(3)
        m0, m1 = _two_fits(db, spec, rng)
        features, fks = _requests(db, spec)
        expected0 = predict_gmm(db, spec, m0.model, features, fks)
        expected1 = predict_gmm(db, spec, m1.model, features, fks)
        assert not np.array_equal(expected0, expected1)

        rt = serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor=executor
        )
        outputs: list[np.ndarray] = []
        errors: list[BaseException] = []
        try:
            rt.register_gmm("m", m0, spec, strategy="factorized")
            start = threading.Barrier(4)

            def reader():
                try:
                    start.wait()
                    for _ in range(12):
                        outputs.append(rt.predict("m", features, fks))
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            start.wait()
            rt.swap_model("m", m1)
            for thread in threads:
                thread.join()
        finally:
            rt.close()

        assert not errors
        saw = {"old": 0, "new": 0}
        for out in outputs:
            if np.array_equal(out, expected0):
                saw["old"] += 1
            elif np.array_equal(out, expected1):
                saw["new"] += 1
            else:
                raise AssertionError(
                    "torn output: matches neither the old nor the "
                    "new fit's oracle"
                )
        # The swap happened mid-traffic, so the new fit must have
        # served at least once; old-generation sightings depend on
        # scheduling and may be zero.
        assert saw["new"] > 0

    def test_maintainer_driven_swap_serves_the_refreshed_fit(
        self, db, multiway_star, executor
    ):
        spec = multiway_star.spec
        config = EMConfig(n_components=2, max_iter=4, seed=2)
        fit = fit_gmm(db, spec, algorithm="factorized", config=config)
        features, fks = _requests(db, spec, n=32)
        rng = np.random.default_rng(9)
        rt = serve_runtime(
            db, num_workers=2, max_wait_ms=0.0, executor=executor
        )
        try:
            rt.register_gmm("m", fit, spec, strategy="factorized")
            with ModelMaintainer(
                db, "m", "gmm", spec, fit, em_config=config,
                policy=MaintenancePolicy(refresh="manual"),
                targets=(rt,),
            ) as maintainer:
                update_dimension(db, spec, rng, count=5)
                maintainer.flush()
                served = rt.predict("m", features, fks)
                oracle = predict_gmm(
                    db, spec, maintainer.model, features, fks
                )
                assert np.array_equal(served, oracle)
        finally:
            rt.close()


class TestModelServiceSwap:
    def test_concurrent_predicts_never_torn(self, db, multiway_star):
        spec = multiway_star.spec
        rng = np.random.default_rng(4)
        m0, m1 = _two_fits(db, spec, rng)
        features, fks = _requests(db, spec)
        expected0 = predict_gmm(db, spec, m0.model, features, fks)
        expected1 = predict_gmm(db, spec, m1.model, features, fks)
        assert not np.array_equal(expected0, expected1)

        service = serve(db)
        outputs: list[np.ndarray] = []
        errors: list[BaseException] = []
        try:
            service.register_gmm("m", m0, spec)
            start = threading.Barrier(3)

            def reader():
                try:
                    start.wait()
                    for _ in range(15):
                        outputs.append(
                            service.predict("m", features, fks)
                        )
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=reader) for _ in range(2)]
            for thread in threads:
                thread.start()
            start.wait()
            service.swap_model("m", m1)
            for thread in threads:
                thread.join()
        finally:
            service.close()

        assert not errors
        for out in outputs:
            assert np.array_equal(out, expected0) or np.array_equal(
                out, expected1
            )


class TestSwapCounters:
    def test_cache_counters_carry_across_the_swap(self, db, multiway_star):
        """Monotonic cache counters must never step backwards when a
        swap rebuilds the caches — retired-generation totals fold in as
        baselines."""
        spec = multiway_star.spec
        config = EMConfig(n_components=2, max_iter=4, seed=6)
        fit = fit_gmm(db, spec, algorithm="factorized", config=config)
        features, fks = _requests(db, spec, n=40)
        rt = serve_runtime(db, num_workers=2, max_wait_ms=0.0)
        try:
            rt.register_gmm("m", fit, spec, strategy="factorized")
            rt.predict("m", features, fks)
            before = rt.cache_stats("m")
            assert sum(s.misses for s in before) > 0

            rt.swap_model("m", fit)
            after_swap = rt.cache_stats("m")
            for old, new in zip(before, after_swap):
                assert new.hits >= old.hits
                assert new.misses >= old.misses
                assert new.invalidations >= old.invalidations

            rt.predict("m", features, fks)
            after_traffic = rt.cache_stats("m")
            for old, new in zip(after_swap, after_traffic):
                assert new.hits + new.misses > old.hits + old.misses
        finally:
            rt.close()

    def test_event_invalidation_stays_rid_scoped_under_maintenance(
        self, db, multiway_star
    ):
        """With a maintainer attached (events pending, no flush), a
        single-RID update must evict exactly that RID's partials —
        untouched RIDs stay resident in the store."""
        spec = multiway_star.spec
        config = EMConfig(n_components=2, max_iter=4, seed=7)
        fit = fit_gmm(db, spec, algorithm="factorized", config=config)
        features, fks = _requests(db, spec, n=60)
        rt = serve_runtime(db, num_workers=2, max_wait_ms=0.0)
        try:
            rt.register_gmm("m", fit, spec, strategy="factorized")
            with ModelMaintainer(
                db, "m", "gmm", spec, fit, em_config=config,
                policy=MaintenancePolicy(refresh="manual"),
                targets=(rt,),
            ) as maintainer:
                rt.predict("m", features, fks)
                entries_before = sum(
                    s.entries for s in rt.cache_stats("m")
                )
                assert entries_before > 0

                dim = spec.dimensions[0].relation
                victim = int(fks[0, 0])
                relation = db.relation(dim)
                position = relation.positions_of_keys(
                    np.array([victim])
                )
                row = relation.scan()[position[0]].copy()
                row[1:] += 1.0
                db.update_rows(dim, position, row[None, :])

                assert maintainer.pending_events == 1  # no refresh ran
                entries_after = sum(
                    s.entries for s in rt.cache_stats("m")
                )
                invalidated = sum(
                    s.invalidations for s in rt.cache_stats("m")
                )
                assert invalidated == 1
                assert entries_after == entries_before - 1
        finally:
            rt.close()
