"""Refit-parity property suite for delta-maintained fits.

Randomized schedules of dimension updates, fact appends and dimension
appends hit a live star while a :class:`~repro.maintain.ModelMaintainer`
listens; after every flush the delta-maintained state must match a
from-scratch oracle over the post-schedule database:

* **ridge** — the rank-k deltas and fold-ins are algebraically exact,
  so the maintained statistics solve to the ``fit_ridge`` fit to float
  round-off;
* **gmm** — statistics maintained through deltas equal statistics
  rebuilt from scratch at the same frozen parameters (and solve to the
  same labels); a forced :meth:`refresh` re-anchors the parameters
  bit-exactly on the deterministic ``fit_gmm`` oracle;
* **nn** — no exact delta exists for the iterative fit, so a dimension
  update must surface as a full deterministic refit, bit-exact against
  the ``fit_nn`` oracle; fact appends fold in as one factorized SGD
  step equal (to float round-off) to the dense-backprop step.

The exactness contract per path is tabulated in docs/maintenance.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import fit_gmm, fit_nn, predict_gmm
from repro.gmm.base import EMConfig
from repro.join.batches import DenseBatch
from repro.linalg.groupsum import codes_for_keys
from repro.linear.models import fit_ridge
from repro.maintain import (
    GMMSuffStats,
    MaintenancePolicy,
    ModelMaintainer,
)
from repro.nn.base import NNConfig
from repro.nn.engines import DenseNNEngine

MANUAL = MaintenancePolicy(refresh="manual")


# -- schedule operations ------------------------------------------------------


def update_dimension(db, spec, rng, *, count=3, which=None):
    """Overwrite ``count`` rows of one dimension in place (keys fixed)."""
    names = [dim.relation for dim in spec.dimensions]
    name = names[which if which is not None else int(rng.integers(len(names)))]
    relation = db.relation(name)
    rows = relation.scan()
    k = min(count, rows.shape[0])
    positions = rng.choice(rows.shape[0], size=k, replace=False)
    replacement = rows[positions].copy()
    replacement[:, 1:] += rng.normal(scale=0.2, size=replacement[:, 1:].shape)
    db.update_rows(name, positions, replacement)


def append_facts(db, spec, rng, *, count=4):
    """Append fact rows (fresh keys, FKs drawn from existing rows)."""
    fact = spec.resolve(db).fact
    rows = fact.scan()
    take = rng.choice(rows.shape[0], size=count)
    new = rows[take].copy()
    key_pos = fact.schema.key_position
    new[:, key_pos] = rows[:, key_pos].max() + 1 + np.arange(count)
    for pos in fact.schema.feature_positions:
        new[:, pos] += rng.normal(scale=0.3, size=count)
    if fact.schema.target_position is not None:
        new[:, fact.schema.target_position] += rng.normal(
            scale=0.3, size=count
        )
    db.append_rows(fact.name, new)


def append_dimension(db, spec, rng, *, count=2):
    """Append fresh (not yet referenced) rows to the first dimension."""
    name = spec.dimensions[0].relation
    relation = db.relation(name)
    rows = relation.scan()
    new = rows[:count].copy()
    new[:, 0] = rows[:, 0].max() + 1 + np.arange(count)
    new[:, 1:] = rng.normal(size=new[:, 1:].shape)
    db.append_rows(name, new)


def materialize(db, spec):
    """The joined wide matrix over the stored fact rows, in scan order."""
    resolved = spec.resolve(db)
    fact = resolved.fact
    rows = fact.scan()
    parts = [fact.project_features(rows)]
    for dim in resolved.dimensions:
        fks = fact.project_foreign_keys(rows, dim.relation.name)
        idx = codes_for_keys(fks.astype(np.int64), dim.relation.keys())
        parts.append(dim.relation.features()[idx])
    return np.column_stack(parts)


# -- ridge: exact parity ------------------------------------------------------


class TestRidgeParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_schedule_matches_refit_oracle(
        self, db, multiway_star, seed
    ):
        spec = multiway_star.spec
        rng = np.random.default_rng(seed)
        with ModelMaintainer(
            db, "m", "linear", spec, alpha=1e-3, policy=MANUAL
        ) as maintainer:
            ops = [update_dimension, append_facts, append_dimension]
            for _ in range(6):
                ops[int(rng.integers(len(ops)))](db, spec, rng)
                maintainer.flush()
                oracle = fit_ridge(db, spec, alpha=1e-3)
                np.testing.assert_allclose(
                    maintainer.model.weights, oracle.weights,
                    rtol=1e-9, atol=1e-12,
                )
                np.testing.assert_allclose(
                    maintainer.model.intercept, oracle.intercept,
                    rtol=1e-9, atol=1e-12,
                )

    def test_append_referencing_new_dimension_rows(self, db, binary_target_spec):
        spec = binary_target_spec
        rng = np.random.default_rng(7)
        with ModelMaintainer(
            db, "m", "linear", spec, alpha=1e-2, policy=MANUAL
        ) as maintainer:
            # Grow the dimension, then append facts that reference the
            # fresh RIDs — the fold must route through the grown index
            # space, not the one the statistics were built with.
            dim = spec.dimensions[0].relation
            relation = db.relation(dim)
            rows = relation.scan()
            fresh_key = rows[:, 0].max() + 1
            new_dim = rows[:1].copy()
            new_dim[0, 0] = fresh_key
            new_dim[0, 1:] = rng.normal(size=new_dim[0, 1:].shape)
            db.append_rows(dim, new_dim)

            fact = spec.resolve(db).fact
            frows = fact.scan()
            new_fact = frows[:3].copy()
            key_pos = fact.schema.key_position
            new_fact[:, key_pos] = frows[:, key_pos].max() + 1 + np.arange(3)
            new_fact[:, fact.schema.fk_position(dim)] = fresh_key
            db.append_rows(fact.name, new_fact)

            maintainer.flush()
            oracle = fit_ridge(db, spec, alpha=1e-2)
            np.testing.assert_allclose(
                maintainer.model.weights, oracle.weights,
                rtol=1e-9, atol=1e-12,
            )


# -- gmm: frozen-gamma deltas and bit-exact refit anchors ---------------------


def _gmm_config():
    return EMConfig(n_components=3, max_iter=8, seed=3)


class TestGMMParity:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_update_deltas_match_frozen_gamma_oracle(
        self, db, multiway_star, seed
    ):
        """Maintained statistics == frozen build-γ times the updated
        join — the delta path exactly reproduces what rebuilding the
        sums with the retained responsibilities would."""
        spec = multiway_star.spec
        config = _gmm_config()
        fit = fit_gmm(db, spec, algorithm="factorized", config=config)
        rng = np.random.default_rng(seed)
        with ModelMaintainer(
            db, "m", "gmm", spec, fit, em_config=config, policy=MANUAL
        ) as maintainer:
            gamma = fit.model.responsibilities(materialize(db, spec))
            for step in range(4):
                update_dimension(db, spec, rng, which=step % 2)
            maintainer.flush()

            dense = materialize(db, spec)
            np.testing.assert_allclose(
                maintainer.stats.counts, gamma.sum(axis=0), rtol=1e-9
            )
            np.testing.assert_allclose(
                maintainer.stats.comp_sum, gamma.T @ dense,
                rtol=1e-8, atol=1e-10,
            )
            np.testing.assert_allclose(
                maintainer.stats.comp_outer,
                np.einsum("nk,nd,ne->kde", gamma, dense, dense),
                rtol=1e-7, atol=1e-9,
            )

    def test_append_only_schedule_matches_scratch_build(
        self, db, multiway_star
    ):
        """With no updates, frozen γ equals fresh γ — so the maintained
        statistics must equal a from-scratch build at the same
        parameters over the grown star, and solve to the same labels."""
        spec = multiway_star.spec
        config = _gmm_config()
        fit = fit_gmm(db, spec, algorithm="factorized", config=config)
        rng = np.random.default_rng(11)
        with ModelMaintainer(
            db, "m", "gmm", spec, fit, em_config=config, policy=MANUAL
        ) as maintainer:
            append_dimension(db, spec, rng)
            append_facts(db, spec, rng, count=5)
            maintainer.flush()

            oracle = GMMSuffStats.build(
                db, spec, fit.model.params, config=config
            )
            np.testing.assert_allclose(
                maintainer.stats.counts, oracle.counts, rtol=1e-9
            )
            np.testing.assert_allclose(
                maintainer.stats.comp_sum, oracle.comp_sum,
                rtol=1e-8, atol=1e-10,
            )
            maintained = maintainer.stats.solve()
            scratch = oracle.solve()
            dense = materialize(db, spec)
            from repro.gmm.model import GaussianMixtureModel

            labels_maintained = GaussianMixtureModel(
                maintained, reg_covar=config.reg_covar
            ).predict(dense)
            labels_scratch = GaussianMixtureModel(
                scratch, reg_covar=config.reg_covar
            ).predict(dense)
            assert np.array_equal(labels_maintained, labels_scratch)

    def test_refresh_anchors_bit_exactly_on_refit_oracle(
        self, db, multiway_star
    ):
        spec = multiway_star.spec
        config = _gmm_config()
        fit = fit_gmm(db, spec, algorithm="factorized", config=config)
        rng = np.random.default_rng(5)
        with ModelMaintainer(
            db, "m", "gmm", spec, fit, em_config=config, policy=MANUAL
        ) as maintainer:
            for _ in range(3):
                update_dimension(db, spec, rng)
            maintainer.refresh()

            oracle = fit_gmm(
                db, spec, algorithm="factorized", config=config
            )
            assert np.array_equal(
                maintainer.model.params.weights, oracle.model.params.weights
            )
            assert np.array_equal(
                maintainer.model.params.means, oracle.model.params.means
            )
            assert np.array_equal(
                maintainer.model.params.covariances,
                oracle.model.params.covariances,
            )
            # Served labels are therefore bit-exact too.
            assert np.array_equal(
                predict_gmm(db, spec, maintainer.model),
                predict_gmm(db, spec, oracle.model),
            )


# -- nn: deterministic refits and one-step fold-ins ---------------------------


def _nn_config():
    return NNConfig(hidden_sizes=(8,), epochs=2, seed=9)


class TestNNParity:
    def test_dimension_update_forces_bit_exact_refit(
        self, db, multiway_star
    ):
        spec = multiway_star.spec
        config = _nn_config()
        fit = fit_nn(db, spec, algorithm="factorized", config=config)
        rng = np.random.default_rng(2)
        with ModelMaintainer(
            db, "m", "nn", spec, fit, nn_config=config, policy=MANUAL
        ) as maintainer:
            update_dimension(db, spec, rng)
            maintainer.flush()

            oracle = fit_nn(db, spec, algorithm="factorized", config=config)
            for ours, theirs in zip(
                maintainer.model.layers, oracle.model.layers
            ):
                assert np.array_equal(ours.weights, theirs.weights)
                assert np.array_equal(ours.bias, theirs.bias)

    def test_fact_append_folds_in_one_dense_equivalent_sgd_step(
        self, db, multiway_star
    ):
        spec = multiway_star.spec
        config = _nn_config()
        fit = fit_nn(db, spec, algorithm="factorized", config=config)
        rng = np.random.default_rng(4)
        with ModelMaintainer(
            db, "m", "nn", spec, fit, nn_config=config, policy=MANUAL
        ) as maintainer:
            before = maintainer.model.copy()
            n_before = spec.resolve(db).fact.scan().shape[0]
            append_facts(db, spec, rng, count=6)
            maintainer.flush()

            # Dense oracle: materialize exactly the appended rows and
            # take the same normalized mini-batch step via standard
            # backprop — the factorized fold must agree to round-off.
            dense = materialize(db, spec)[n_before:]
            fact = spec.resolve(db).fact
            targets = fact.project_targets(fact.scan())[n_before:]
            oracle = before.copy()
            engine = DenseNNEngine(None, oracle)
            batch = DenseBatch(np.arange(6), dense, targets)
            _, grads = engine.batch_gradients(batch, batch.features.shape[0])
            oracle.apply_grads(grads, config.learning_rate)
            for ours, theirs in zip(maintainer.model.layers, oracle.layers):
                np.testing.assert_allclose(
                    ours.weights, theirs.weights, rtol=1e-9, atol=1e-12
                )
