"""ModelMaintainer policy, metrics and lifecycle behaviour."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.api import fit_gmm, maintain, predict_gmm, serve
from repro.errors import ModelError
from repro.fx.statstore import StatsStore
from repro.gmm.base import EMConfig
from repro.maintain import MaintenancePolicy, ModelMaintainer
from repro.obs import Telemetry, prometheus_text

from tests.maintain.test_delta_parity import (
    append_facts,
    update_dimension,
)


class TestPolicyValidation:
    def test_bad_refresh_rejected(self):
        with pytest.raises(ModelError, match="refresh"):
            MaintenancePolicy(refresh="sometimes")

    def test_bad_bounds_rejected(self):
        with pytest.raises(ModelError, match="max_pending"):
            MaintenancePolicy(max_pending=0)
        with pytest.raises(ModelError, match="drift_bound"):
            MaintenancePolicy(drift_bound=0.0)
        with pytest.raises(ModelError, match="max_staleness"):
            MaintenancePolicy(max_staleness=-1.0)

    def test_bad_kind_rejected(self, db, multiway_star):
        with pytest.raises(ModelError, match="kind"):
            ModelMaintainer(db, "m", "svm", multiway_star.spec)


class TestRefreshPolicies:
    def test_eager_applies_on_every_event(self, db, multiway_star):
        spec = multiway_star.spec
        rng = np.random.default_rng(0)
        with ModelMaintainer(
            db, "m", "linear", spec,
            policy=MaintenancePolicy(refresh="eager"),
        ) as maintainer:
            before = maintainer.model.weights.copy()
            update_dimension(db, spec, rng)
            assert maintainer.pending_events == 0
            assert not np.array_equal(maintainer.model.weights, before)

    def test_batched_coalesces_until_max_pending(self, db, multiway_star):
        spec = multiway_star.spec
        rng = np.random.default_rng(1)
        with ModelMaintainer(
            db, "m", "linear", spec,
            policy=MaintenancePolicy(refresh="batched", max_pending=3),
        ) as maintainer:
            before = maintainer.model.weights.copy()
            update_dimension(db, spec, rng)
            update_dimension(db, spec, rng)
            assert maintainer.pending_events == 2
            assert np.array_equal(maintainer.model.weights, before)
            update_dimension(db, spec, rng)   # third event trips the bound
            assert maintainer.pending_events == 0
            assert not np.array_equal(maintainer.model.weights, before)

    def test_manual_waits_for_flush(self, db, multiway_star):
        spec = multiway_star.spec
        rng = np.random.default_rng(2)
        with ModelMaintainer(
            db, "m", "linear", spec,
            policy=MaintenancePolicy(refresh="manual"),
        ) as maintainer:
            for _ in range(5):
                update_dimension(db, spec, rng)
            assert maintainer.pending_events == 5
            assert maintainer.flush()
            assert maintainer.pending_events == 0
            assert not maintainer.flush()     # nothing left to apply

    def test_poll_fires_the_staleness_trigger(self, db, multiway_star):
        spec = multiway_star.spec
        rng = np.random.default_rng(3)
        with ModelMaintainer(
            db, "m", "linear", spec,
            policy=MaintenancePolicy(
                refresh="batched", max_pending=100, max_staleness=0.02
            ),
        ) as maintainer:
            update_dimension(db, spec, rng)
            # One lone event below max_pending: only the staleness
            # clock can flush it, via poll().
            assert maintainer.pending_events == 1
            time.sleep(0.03)
            assert maintainer.poll()
            assert maintainer.pending_events == 0
            assert not maintainer.poll()      # nothing pending anymore

    def test_staleness_is_age_of_oldest_pending(self, db, multiway_star):
        spec = multiway_star.spec
        rng = np.random.default_rng(4)
        with ModelMaintainer(
            db, "m", "linear", spec,
            policy=MaintenancePolicy(refresh="manual"),
        ) as maintainer:
            assert maintainer.staleness_seconds() == 0.0
            update_dimension(db, spec, rng)
            time.sleep(0.01)
            assert maintainer.staleness_seconds() >= 0.01
            maintainer.flush()
            assert maintainer.staleness_seconds() == 0.0


class TestRefitFallbacks:
    def test_drift_bound_forces_full_refit(self, db, multiway_star):
        spec = multiway_star.spec
        config = EMConfig(n_components=2, max_iter=4, seed=0)
        fit = fit_gmm(db, spec, algorithm="factorized", config=config)
        telemetry = Telemetry(enabled=True)
        rng = np.random.default_rng(5)
        with ModelMaintainer(
            db, "m", "gmm", spec, fit, em_config=config,
            policy=MaintenancePolicy(refresh="manual", drift_bound=1e-12),
            telemetry=telemetry,
        ) as maintainer:
            update_dimension(db, spec, rng)
            maintainer.flush()
            # Any movement exceeds the bound: the refresh must have
            # been a full refit, which re-anchors drift at zero.
            assert maintainer.drift == 0.0
            text = prometheus_text(telemetry.registry.snapshot())
            assert 'repro_maintain_refits_total{model="m"} 1' in text

    def test_inplace_fact_update_forces_refit(self, db, multiway_star):
        spec = multiway_star.spec
        telemetry = Telemetry(enabled=True)
        with ModelMaintainer(
            db, "m", "linear", spec,
            policy=MaintenancePolicy(refresh="manual"),
            telemetry=telemetry,
        ) as maintainer:
            fact = spec.resolve(db).fact
            rows = fact.scan()
            replacement = rows[:2].copy()
            for pos in fact.schema.feature_positions:
                replacement[:, pos] += 0.25
            db.update_rows(fact.name, np.arange(2), replacement)
            maintainer.flush()
            text = prometheus_text(telemetry.registry.snapshot())
            assert 'repro_maintain_refits_total{model="m"} 1' in text

    def test_delta_metrics_emitted(self, db, multiway_star):
        spec = multiway_star.spec
        telemetry = Telemetry(enabled=True)
        rng = np.random.default_rng(6)
        with ModelMaintainer(
            db, "m", "linear", spec,
            policy=MaintenancePolicy(refresh="manual"),
            telemetry=telemetry,
        ) as maintainer:
            update_dimension(db, spec, rng)
            append_facts(db, spec, rng)
            maintainer.flush()
            text = prometheus_text(telemetry.registry.snapshot())
            assert 'repro_maintain_deltas_total{model="m"} 2' in text
            assert 'repro_maintain_staleness_seconds{model="m"}' in text
            aggregates = telemetry.span_aggregates()
            assert aggregates["maintain.apply"]["count"] == 1


class TestTargets:
    def test_refresh_hot_swaps_into_model_service(self, db, multiway_star):
        spec = multiway_star.spec
        config = EMConfig(n_components=2, max_iter=4, seed=1)
        fit = fit_gmm(db, spec, algorithm="factorized", config=config)
        service = serve(db)
        rng = np.random.default_rng(7)
        try:
            service.register_gmm("m", fit, spec)
            fact = spec.resolve(db).fact
            stored = fact.scan()
            features = fact.project_features(stored[:32])
            fks = np.column_stack([
                stored[:32, fact.schema.fk_position(dim.relation)]
                for dim in spec.dimensions
            ]).astype(np.int64)
            with maintain(
                db, "m", "gmm", spec, fit, em_config=config,
                policy=MaintenancePolicy(refresh="eager"),
                targets=(service,),
            ) as maintainer:
                update_dimension(db, spec, rng, count=5)
                served = service.predict("m", features, fks)
                direct = predict_gmm(
                    db, spec, maintainer.model, features, fks
                )
                assert np.array_equal(served, direct)
        finally:
            service.close()


class TestStatsSharing:
    def test_two_maintainers_share_one_statistics_object(
        self, db, multiway_star
    ):
        spec = multiway_star.spec
        store = StatsStore()
        with ModelMaintainer(
            db, "a", "linear", spec, stats_store=store,
            policy=MaintenancePolicy(refresh="manual"),
        ) as first, ModelMaintainer(
            db, "b", "linear", spec, stats_store=store,
            policy=MaintenancePolicy(refresh="manual"),
        ) as second:
            assert first.stats is second.stats
            stats = store.stats()
            assert stats["resident"] == 1
            assert stats["builds"] == 1
            assert stats["shared_acquisitions"] == 1
            assert list(stats["refcounts"].values()) == [2]

    def test_close_releases_residency(self, db, multiway_star):
        spec = multiway_star.spec
        store = StatsStore()
        maintainer = ModelMaintainer(
            db, "a", "linear", spec, stats_store=store,
            policy=MaintenancePolicy(refresh="manual"),
        )
        assert store.stats()["resident"] == 1
        maintainer.close()
        assert store.stats()["resident"] == 0

    def test_closed_maintainer_ignores_events(self, db, multiway_star):
        spec = multiway_star.spec
        rng = np.random.default_rng(8)
        maintainer = ModelMaintainer(
            db, "a", "linear", spec,
            policy=MaintenancePolicy(refresh="manual"),
        )
        maintainer.close()
        update_dimension(db, spec, rng)
        assert maintainer.pending_events == 0
