"""The high-level fit_gmm / fit_nn API."""

import warnings

import numpy as np
import pytest

from repro.core.api import (
    compare_gmm_strategies,
    compare_nn_strategies,
    fit_gmm,
    fit_nn,
)
from repro.core.strategies import (
    FACTORIZED,
    MATERIALIZED,
    STREAMING,
    resolve_serving_strategy,
    resolve_strategy,
)
from repro.errors import ModelError
from repro.gmm.base import EMConfig
from repro.join.reference import nested_loop_join
from repro.nn.base import NNConfig


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


class TestStrategyResolution:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("factorized", FACTORIZED),
            ("F", FACTORIZED),
            ("f-gmm", FACTORIZED),
            ("M", MATERIALIZED),
            ("m-nn", MATERIALIZED),
            ("streaming", STREAMING),
            ("S-GMM", STREAMING),
        ],
    )
    def test_aliases(self, alias, expected):
        assert resolve_strategy(alias) == expected

    def test_unknown(self):
        with pytest.raises(ModelError, match="unknown algorithm"):
            resolve_strategy("quantum")

    @pytest.mark.parametrize(
        "alias,expected",
        [("F", FACTORIZED), ("materialized", MATERIALIZED)],
    )
    def test_serving_aliases(self, alias, expected):
        assert resolve_serving_strategy(alias) == expected

    def test_serving_rejects_streaming(self):
        with pytest.raises(ModelError, match="training-only"):
            resolve_serving_strategy("streaming")


class TestFitGMM:
    def test_returns_usable_model(self, db, binary_star):
        result = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=3, tol=0.0,
        )
        assert result.algorithm == "F-GMM"
        assert len(result.log_likelihood_history) == 3
        assert result.wall_time_seconds > 0
        assert result.io is not None
        data = np.random.default_rng(0).normal(size=(10, 8))
        labels = result.model.predict(data)
        assert labels.shape == (10,)
        assert set(labels) <= {0, 1}

    def test_result_predict_convenience(self, db, binary_star):
        # GMMResult.predict mirrors NNResult.predict: dense joined rows
        # in, cluster assignments out.
        result = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, tol=0.0,
        )
        joined = nested_loop_join(db, binary_star.spec).features
        np.testing.assert_array_equal(
            result.predict(joined), result.model.predict(joined)
        )

    @pytest.mark.parametrize(
        "algorithm", ["materialized", "streaming", "factorized"]
    )
    def test_all_strategies_accessible(self, db, binary_star, algorithm):
        result = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, tol=0.0,
            algorithm=algorithm,
        )
        assert result.model.params.n_components == 2

    def test_explicit_config_wins(self, db, binary_star):
        config = EMConfig(n_components=4, max_iter=2, tol=0.0, seed=3)
        result = fit_gmm(
            db, binary_star.spec, n_components=2, config=config
        )
        assert result.model.params.n_components == 4

    def test_strategies_agree_through_api(self, db, binary_star):
        config = EMConfig(n_components=2, max_iter=3, tol=0.0, seed=1)
        results = [
            fit_gmm(db, binary_star.spec, algorithm=a, config=config)
            for a in ("M", "S", "F")
        ]
        assert results[0].fit.params.allclose(results[1].fit.params)
        assert results[1].fit.params.allclose(results[2].fit.params)


class TestAutoResolution:
    def test_redundant_workload_resolves_factorized(self, db,
                                                    binary_star):
        # binary_star: 500 facts over 25 dimension rows — rr = 20.
        result = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, tol=0.0,
            algorithm="auto",
        )
        assert result.algorithm == "F-GMM"

    def test_flat_short_run_resolves_streaming(self, db):
        # No redundancy (every dimension row referenced once) and a
        # single EM iteration: the dense representation wins compute,
        # and the folded-in page models make materializing T a loss —
        # memory, not compute, binds.
        from repro.data.synthetic import StarSchemaConfig, generate_star

        star = generate_star(
            db,
            StarSchemaConfig.binary(
                n_s=500, n_r=500, d_s=2, d_r=10, with_target=True,
                seed=5,
            ),
        )
        result = fit_gmm(
            db, star.spec, n_components=2, max_iter=1, tol=0.0,
            algorithm="auto",
        )
        assert result.algorithm == "S-GMM"

    def test_flat_long_run_resolves_materialized(self, db):
        from repro.data.synthetic import StarSchemaConfig, generate_star

        star = generate_star(
            db,
            StarSchemaConfig.binary(
                n_s=500, n_r=500, d_s=2, d_r=10, with_target=True,
                seed=5,
            ),
        )
        result = fit_nn(
            db, star.spec, hidden_sizes=(4,), epochs=40,
            algorithm="auto",
        )
        assert result.algorithm == "M-NN"


class TestFitNN:
    def test_returns_usable_model(self, db, binary_star):
        result = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=2,
        )
        assert result.algorithm == "F-NN"
        assert len(result.loss_history) == 2
        predictions = result.predict(
            np.random.default_rng(0).normal(size=(5, 8))
        )
        assert predictions.shape == (5, 1)

    def test_loss_decreases(self, db, binary_star):
        result = fit_nn(
            db, binary_star.spec, hidden_sizes=(10,), epochs=8,
            learning_rate=0.1,
        )
        assert result.loss_history[-1] < result.loss_history[0]

    @pytest.mark.parametrize("algorithm", ["M", "S", "F"])
    def test_all_strategies(self, db, binary_star, algorithm):
        result = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1,
            algorithm=algorithm,
        )
        assert result.wall_time_seconds > 0

    def test_explicit_config(self, db, binary_star):
        config = NNConfig(hidden_sizes=(3, 3), epochs=1, seed=1)
        result = fit_nn(db, binary_star.spec, config=config)
        assert [layer.n_out for layer in result.model.layers] == [3, 3, 1]


class TestComparisons:
    def test_gmm_comparison(self, db, binary_star):
        config = EMConfig(n_components=2, max_iter=2, tol=0.0, seed=1)
        comparison = compare_gmm_strategies(db, binary_star.spec, config)
        assert set(comparison.results) == {
            MATERIALIZED, STREAMING, FACTORIZED,
        }
        times = comparison.wall_times()
        assert all(t > 0 for t in times.values())
        speedups = comparison.speedup_of_factorized()
        assert set(speedups) == {MATERIALIZED, STREAMING}

    def test_nn_comparison_subset(self, db, binary_star):
        config = NNConfig(hidden_sizes=(4,), epochs=1, seed=1)
        comparison = compare_nn_strategies(
            db, binary_star.spec, config,
            strategies=("streaming", "factorized"),
        )
        assert set(comparison.results) == {STREAMING, FACTORIZED}

    def test_speedup_without_factorized_run_raises_clearly(
        self, db, binary_star
    ):
        config = EMConfig(n_components=2, max_iter=2, tol=0.0, seed=1)
        comparison = compare_gmm_strategies(
            db, binary_star.spec, config,
            strategies=("materialized", "streaming"),
        )
        with pytest.raises(
            ModelError, match="factorized strategy was not among the runs"
        ):
            comparison.speedup_of_factorized()
