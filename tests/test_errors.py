"""The exception hierarchy contract."""

import pytest

from repro.errors import (
    ConvergenceWarning,
    JoinError,
    ModelError,
    NotFittedError,
    ReproError,
    SchemaError,
    StorageError,
)


@pytest.mark.parametrize(
    "exc", [SchemaError, StorageError, JoinError, ModelError, NotFittedError]
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_not_fitted_is_a_model_error():
    assert issubclass(NotFittedError, ModelError)


def test_convergence_warning_is_a_user_warning():
    assert issubclass(ConvergenceWarning, UserWarning)
    assert not issubclass(ConvergenceWarning, ReproError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise JoinError("boom")
