"""Inference cost model: monotone savings in n/m and d_R, cache effects."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.serve.cost_model import (
    gmm_serving_break_even_tuple_ratio,
    gmm_serving_mults_dense,
    gmm_serving_mults_factorized,
    gmm_serving_saving_rate,
    nn_serving_break_even_tuple_ratio,
    nn_serving_mults_dense,
    nn_serving_mults_factorized,
    nn_serving_saving_rate,
)

M = 100
TUPLE_RATIOS = (10, 30, 100, 300, 1000)
DIM_WIDTHS = (2, 5, 15, 40, 80)


class TestMonotonicity:
    @pytest.mark.parametrize("d_s", [2, 5, 20])
    def test_nn_saving_increases_with_tuple_ratio(self, d_s):
        rates = [
            nn_serving_saving_rate(M * rr, M, d_s, 15, 32)
            for rr in TUPLE_RATIOS
        ]
        assert np.all(np.diff(rates) > 0)

    @pytest.mark.parametrize("rr", [10, 50, 300])
    def test_nn_saving_increases_with_dim_width(self, rr):
        rates = [
            nn_serving_saving_rate(M * rr, M, 5, d_r, 32)
            for d_r in DIM_WIDTHS
        ]
        assert np.all(np.diff(rates) > 0)

    @pytest.mark.parametrize("d_s", [2, 5, 20])
    def test_gmm_saving_increases_with_tuple_ratio(self, d_s):
        rates = [
            gmm_serving_saving_rate(M * rr, M, d_s, 15, 4)
            for rr in TUPLE_RATIOS
        ]
        assert np.all(np.diff(rates) > 0)

    @pytest.mark.parametrize("rr", [10, 50, 300])
    def test_gmm_saving_increases_with_dim_width(self, rr):
        rates = [
            gmm_serving_saving_rate(M * rr, M, 5, d_r, 4)
            for d_r in DIM_WIDTHS
        ]
        assert np.all(np.diff(rates) > 0)


class TestFactorizedWins:
    """Acceptance regime: fewer multiplications for any n/m ≥ 10."""

    @pytest.mark.parametrize("rr", TUPLE_RATIOS)
    @pytest.mark.parametrize("d_r", [2, 15, 80])
    def test_nn_factorized_multiplies_less(self, rr, d_r):
        assert nn_serving_mults_factorized(
            M * rr, M, 5, d_r, 32
        ) < nn_serving_mults_dense(M * rr, 5, d_r, 32)

    @pytest.mark.parametrize("rr", TUPLE_RATIOS)
    @pytest.mark.parametrize("d_r", [2, 15, 80])
    def test_gmm_factorized_multiplies_less(self, rr, d_r):
        assert gmm_serving_mults_factorized(
            M * rr, M, 5, d_r, 4
        ) < gmm_serving_mults_dense(M * rr, 5, d_r, 4)

    def test_break_even_ratios_sit_at_or_below_one(self):
        assert nn_serving_break_even_tuple_ratio(5, 15) == 1.0
        for d_s, d_r in [(5, 15), (3, 2), (20, 5), (1, 1)]:
            assert gmm_serving_break_even_tuple_ratio(d_s, d_r) <= 1.0

    def test_no_redundancy_means_no_nn_saving(self):
        # With m == n the factorized first layer is just a split of the
        # dense product: never cheaper, never pricier.
        assert nn_serving_mults_factorized(
            1000, 1000, 5, 15, 32
        ) == nn_serving_mults_dense(1000, 5, 15, 32)


class TestCacheEffects:
    def test_warm_cache_removes_dimension_side_entirely(self):
        assert nn_serving_mults_factorized(
            10_000, 100, 5, 15, 32, hit_rate=1.0
        ) == 10_000 * 32 * 5
        assert gmm_serving_mults_factorized(
            10_000, 100, 5, 15, 4, hit_rate=1.0
        ) == 10_000 * 4 * (5 * 5 + 2 * 5)

    def test_saving_rate_grows_with_hit_rate(self):
        rates = [
            gmm_serving_saving_rate(5_000, 500, 5, 15, 4, hit_rate=h)
            for h in (0.0, 0.5, 0.9, 1.0)
        ]
        assert np.all(np.diff(rates) > 0)

    @pytest.mark.parametrize("hit_rate", [-0.1, 1.5])
    def test_bad_hit_rate_rejected(self, hit_rate):
        with pytest.raises(ModelError, match="hit_rate"):
            nn_serving_mults_factorized(
                100, 10, 5, 15, 32, hit_rate=hit_rate
            )


class TestValidation:
    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ModelError, match="positive"):
            nn_serving_mults_dense(0, 5, 15, 32)
        with pytest.raises(ModelError, match="positive"):
            gmm_serving_mults_factorized(100, -1, 5, 15, 4)
        with pytest.raises(ModelError, match="positive"):
            gmm_serving_break_even_tuple_ratio(0, 15)
