"""ModelService: registration, serving, and bookkeeping."""

import warnings

import numpy as np
import pytest

from repro.core.api import fit_gmm, fit_nn, serve
from repro.errors import ModelError
from repro.serve.predictor import (
    FactorizedGMMPredictor,
    FactorizedNNPredictor,
    MaterializedNNPredictor,
)
from repro.serve.service import ModelService
from repro.storage.iostats import IOSnapshot


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture
def served(db, binary_star):
    gmm = fit_gmm(db, binary_star.spec, n_components=2, max_iter=2, seed=1)
    nn = fit_nn(db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1)
    service = serve(db)
    service.register_gmm("clusters", gmm, binary_star.spec)
    service.register_nn("ratings", nn, binary_star.spec)
    return service, binary_star.spec, gmm, nn


def a_request(db, spec, n=30):
    fact = spec.resolve(db).fact
    rows = fact.scan()[:n]
    fk = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
    return fact.project_features(rows), fk


class TestRegistration:
    def test_register_binds_the_right_predictors(self, served):
        service, _, _, _ = served
        assert service.model_names == ["clusters", "ratings"]
        assert isinstance(
            service.model("clusters").predictor, FactorizedGMMPredictor
        )
        assert isinstance(
            service.model("ratings").predictor, FactorizedNNPredictor
        )

    def test_strategy_knob_and_aliases(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        service = ModelService(db)
        service.register_nn("m", nn, binary_star.spec, strategy="M")
        assert isinstance(
            service.model("m").predictor, MaterializedNNPredictor
        )
        assert service.model("m").strategy == "materialized"

    def test_streaming_strategy_rejected(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        with pytest.raises(ModelError, match="training-only"):
            ModelService(db).register_nn(
                "s", nn, binary_star.spec, strategy="streaming"
            )

    def test_cache_entries_with_materialized_rejected(self, db, binary_star):
        # The materialized path keeps no partials; silently dropping
        # the knob would hide a misconfiguration.
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        with pytest.raises(ModelError, match="cache_entries"):
            ModelService(db).register_nn(
                "m", nn, binary_star.spec,
                strategy="materialized", cache_entries=100,
            )

    def test_bare_models_accepted(self, db, binary_star):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, seed=1
        )
        service = ModelService(db)
        service.register_gmm("bare", gmm.model, binary_star.spec)
        assert "bare" in service

    def test_wrong_model_kind_rejected(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        with pytest.raises(ModelError, match="GMMResult"):
            ModelService(db).register_gmm("oops", nn, binary_star.spec)

    def test_duplicate_name_rejected(self, served, db):
        service, spec, gmm, _ = served
        with pytest.raises(ModelError, match="already registered"):
            service.register_gmm("clusters", gmm, spec)

    def test_unregister(self, served):
        service, _, _, _ = served
        service.unregister("clusters")
        assert "clusters" not in service
        with pytest.raises(ModelError, match="no model"):
            service.unregister("clusters")

    def test_unknown_model_rejected(self, served):
        service, _, _, _ = served
        with pytest.raises(ModelError, match="no registered model"):
            service.predict("nope", np.zeros((1, 3)), np.zeros(1, int))


class TestServing:
    def test_predict_matches_direct_predictor(self, served, db):
        service, spec, gmm, nn = served
        features, fk = a_request(db, spec)
        np.testing.assert_array_equal(
            service.predict("clusters", features, fk),
            FactorizedGMMPredictor(db, spec, gmm.model).predict(
                features, fk
            ),
        )
        np.testing.assert_allclose(
            service.predict("ratings", features, fk),
            FactorizedNNPredictor(db, spec, nn.model).predict(features, fk),
            rtol=1e-12, atol=1e-12,
        )

    def test_predict_all_scores_every_fact_tuple(self, served, db):
        service, spec, _, _ = served
        labels = service.predict_all("clusters")
        assert labels.shape == (spec.resolve(db).fact.nrows,)

    def test_score_is_gmm_only(self, served, db):
        service, spec, gmm, _ = served
        features, fk = a_request(db, spec)
        scores = service.score("clusters", features, fk)
        assert scores.shape == (features.shape[0],)
        with pytest.raises(ModelError, match="score"):
            service.score("ratings", features, fk)


class TestInvalidation:
    def test_dimension_update_evicts_and_next_predict_is_fresh(
        self, db, binary_star
    ):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        service = ModelService(db)
        service.register_nn("n", nn, binary_star.spec)
        fact = binary_star.spec.resolve(db).fact
        rows = fact.scan()[:40]
        features = fact.project_features(rows)
        fks = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
        before = service.predict("n", features, fks)

        relation = db["R1"]
        victim = int(fks[0])
        position = relation.positions_of_keys(np.array([victim]))
        new_row = relation.scan()[position[0]].copy()
        new_row[1:] += 5.0
        db.update_rows("R1", position, new_row[None, :])
        (cache_stats,) = service.cache_stats("n")
        assert cache_stats.invalidations == 1

        after = service.predict("n", features, fks)
        oracle = MaterializedNNPredictor(
            db, binary_star.spec, nn.model
        ).predict(features, fks)
        np.testing.assert_allclose(after, oracle, rtol=1e-9, atol=1e-9)
        assert not np.allclose(before[fks == victim], after[fks == victim])

    def test_dropped_service_is_garbage_collectable(self, db, binary_star):
        # The event subscription must not pin a service the caller
        # discarded without close(): only a weakref shim stays behind.
        import gc
        import weakref

        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        service = ModelService(db)
        service.register_nn("n", nn, binary_star.spec)
        ref = weakref.ref(service)
        del service
        gc.collect()
        assert ref() is None
        # ... and an update after collection is a harmless no-op.
        relation = db["R1"]
        row = relation.scan()[0].copy()
        db.update_rows(
            "R1", np.array([0]), row[None, :]
        )

    def test_failing_subscriber_does_not_starve_later_ones(
        self, db, binary_star
    ):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )

        def bad_listener(event):
            raise RuntimeError("listener bug")

        db.subscribe(bad_listener)   # registered before the service
        service = ModelService(db)
        service.register_nn("n", nn, binary_star.spec)
        fact = binary_star.spec.resolve(db).fact
        rows = fact.scan()[:10]
        features = fact.project_features(rows)
        fks = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
        service.predict("n", features, fks)   # warm the cache

        relation = db["R1"]
        position = relation.positions_of_keys(np.array([int(fks[0])]))
        row = relation.scan()[position[0]].copy()
        row[1:] += 1.0
        with pytest.raises(RuntimeError, match="listener bug"):
            db.update_rows("R1", position, row[None, :])
        # The write landed and the service still heard about it.
        assert db.row_version("R1") == 1
        assert service.cache_stats("n")[0].invalidations == 1

    def test_close_detaches_from_update_notifications(
        self, db, binary_star
    ):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        service = ModelService(db)
        service.register_nn("n", nn, binary_star.spec)
        fact = binary_star.spec.resolve(db).fact
        rows = fact.scan()[:10]
        features = fact.project_features(rows)
        fks = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
        service.predict("n", features, fks)
        service.close()
        service.close()   # idempotent
        relation = db["R1"]
        position = relation.positions_of_keys(np.array([int(fks[0])]))
        db.update_rows("R1", position, relation.scan()[position[0]][None, :])
        assert service.cache_stats("n")[0].invalidations == 0


class TestServingStatsGuard:
    def test_sub_resolution_durations_cannot_zero_wall_time(self):
        from repro.serve.service import ServingStats

        stats = ServingStats()
        for _ in range(1000):
            stats.record(10, 0.0)   # faster than the clock can see
        assert stats.wall_seconds > 0
        assert stats.rows == 10_000
        assert np.isfinite(stats.rows_per_second)

    def test_measurable_durations_accumulate_unclamped(self):
        from repro.serve.service import ServingStats

        stats = ServingStats()
        stats.record(100, 0.5)
        stats.record(100, 0.25)
        assert stats.wall_seconds == pytest.approx(0.75)
        assert stats.rows_per_second == pytest.approx(200 / 0.75)

    def test_record_accumulates_io(self):
        from repro.serve.service import ServingStats

        stats = ServingStats()
        stats.record(1, 0.1, IOSnapshot(pages_read=3))
        stats.record(1, 0.1, IOSnapshot(pages_read=4))
        assert stats.io.pages_read == 7


class TestBookkeeping:
    def test_stats_accumulate_per_model(self, served, db):
        service, spec, _, _ = served
        features, fk = a_request(db, spec, n=20)
        service.predict("clusters", features, fk)
        service.predict("clusters", features, fk)
        stats = service.stats("clusters")
        assert stats.requests == 2
        assert stats.rows == 40
        assert stats.wall_seconds > 0
        assert stats.rows_per_second > 0
        # The other model's counters are untouched.
        assert service.stats("ratings").requests == 0

    def test_io_attributed_to_the_serving_model(self, db, binary_star):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, seed=1
        )
        db.buffer_pool.clear()  # cold pages: the request must pay reads
        service = ModelService(db)
        service.register_gmm("clusters", gmm, binary_star.spec)
        features, fk = a_request(db, binary_star.spec)
        service.predict("clusters", features, fk)
        io = service.stats("clusters").io
        assert isinstance(io, IOSnapshot)
        assert io.pages_read > 0
        assert "R1" in io.reads_by_relation

    def test_cache_stats_exposed_for_factorized_models(self, served, db):
        service, spec, _, _ = served
        features, fk = a_request(db, spec)
        service.predict("ratings", features, fk)
        service.predict("ratings", features, fk)
        (cache,) = service.cache_stats("ratings")
        assert cache.misses > 0
        assert cache.hits >= cache.misses  # second request fully warm

    def test_materialized_models_have_no_caches(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        service = ModelService(db)
        service.register_nn(
            "m", nn, binary_star.spec, strategy="materialized"
        )
        assert service.cache_stats("m") == []
