"""LRU partial-cache behaviour: hit/miss/eviction accounting."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.serve.cache import PartialCache


def rows_for(keys):
    """Deterministic fake partial rows: row value == key."""
    keys = np.asarray(keys, dtype=np.float64)
    return np.column_stack([keys, keys * 10.0])


class TestGetMany:
    def test_cold_lookup_computes_everything(self):
        cache = PartialCache()
        calls = []

        def compute(keys):
            calls.append(keys.copy())
            return rows_for(keys)

        out = cache.get_many(np.array([3, 1, 7]), compute)
        np.testing.assert_array_equal(out, rows_for([3, 1, 7]))
        assert len(calls) == 1
        np.testing.assert_array_equal(calls[0], [3, 1, 7])
        assert cache.hits == 0 and cache.misses == 3

    def test_warm_lookup_never_recomputes(self):
        cache = PartialCache()
        cache.get_many(np.array([1, 2, 3]), rows_for)

        def explode(keys):  # pragma: no cover - must not be called
            raise AssertionError("warm lookup recomputed")

        out = cache.get_many(np.array([2, 3]), explode)
        np.testing.assert_array_equal(out, rows_for([2, 3]))
        assert cache.hits == 2 and cache.misses == 3

    def test_partial_hit_computes_only_misses(self):
        cache = PartialCache()
        cache.get_many(np.array([1, 2]), rows_for)
        seen = []

        def compute(keys):
            seen.extend(keys.tolist())
            return rows_for(keys)

        out = cache.get_many(np.array([2, 5, 1]), compute)
        np.testing.assert_array_equal(out, rows_for([2, 5, 1]))
        assert seen == [5]
        assert cache.hits == 2 and cache.misses == 3

    def test_rows_align_with_requested_key_order(self):
        cache = PartialCache()
        cache.get_many(np.array([9]), rows_for)
        out = cache.get_many(np.array([4, 9, 2]), rows_for)
        np.testing.assert_array_equal(out, rows_for([4, 9, 2]))


class TestEviction:
    def test_capacity_bounds_entries(self):
        cache = PartialCache(capacity=2)
        cache.get_many(np.array([1, 2, 3]), rows_for)
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_lru_order_evicts_coldest(self):
        cache = PartialCache(capacity=2)
        cache.get_many(np.array([1]), rows_for)
        cache.get_many(np.array([2]), rows_for)
        cache.get_many(np.array([1]), rows_for)   # touch 1 → 2 is coldest
        cache.get_many(np.array([3]), rows_for)   # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_request_wider_than_capacity_still_correct(self):
        cache = PartialCache(capacity=2)
        out = cache.get_many(np.array([1, 2, 3, 4, 5]), rows_for)
        np.testing.assert_array_equal(out, rows_for([1, 2, 3, 4, 5]))
        assert len(cache) == 2
        assert cache.evictions == 3

    def test_unbounded_cache_never_evicts(self):
        cache = PartialCache()
        cache.get_many(np.arange(100), rows_for)
        assert len(cache) == 100
        assert cache.evictions == 0


class TestSizeAwareCapacity:
    def test_capacity_floats_bounds_resident_floats(self):
        cache = PartialCache(capacity_floats=5)   # rows are 2 floats wide
        cache.get_many(np.array([1, 2, 3]), rows_for)
        assert cache.floats_resident <= 5
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_floats_and_entries_bounds_compose(self):
        cache = PartialCache(capacity=10, capacity_floats=4)
        cache.get_many(np.array([1, 2, 3]), rows_for)
        assert len(cache) == 2     # the float bound binds first

    def test_single_row_wider_than_float_capacity_still_served(self):
        cache = PartialCache(capacity_floats=1)
        out = cache.get_many(np.array([1]), rows_for)
        np.testing.assert_array_equal(out, rows_for([1]))
        assert len(cache) == 0     # immediately evicted, result intact

    def test_bytes_resident_tracks_insertions_and_evictions(self):
        cache = PartialCache(capacity=2)
        cache.get_many(np.array([1, 2]), rows_for)
        assert cache.bytes_resident == 2 * 2 * 8
        assert cache.stats().bytes_resident == 32
        cache.get_many(np.array([3]), rows_for)   # evicts one row
        assert cache.bytes_resident == 32
        cache.clear()
        assert cache.bytes_resident == 0

    def test_invalidate_releases_bytes(self):
        cache = PartialCache()
        cache.get_many(np.array([1, 2]), rows_for)
        assert cache.invalidate(np.array([1, 99])) == 1
        assert cache.bytes_resident == 16
        assert cache.stats().invalidations == 1
        assert 1 not in cache and 2 in cache

    @pytest.mark.parametrize("capacity_floats", [0, -2])
    def test_nonpositive_float_capacity_rejected(self, capacity_floats):
        with pytest.raises(ModelError, match="capacity_floats"):
            PartialCache(capacity_floats=capacity_floats)

    def test_row_wider_than_float_capacity_warns_once(self):
        cache = PartialCache(capacity_floats=1)
        with pytest.warns(RuntimeWarning, match="capacity_floats"):
            cache.get_many(np.array([1]), rows_for)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")   # a repeat would raise
            cache.get_many(np.array([2]), rows_for)


class TestStats:
    def test_stats_snapshot(self):
        cache = PartialCache(capacity=2)
        cache.get_many(np.array([1, 2, 3]), rows_for)
        cache.get_many(np.array([3]), rows_for)
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 3
        assert stats.evictions == 1
        assert stats.entries == 2
        assert stats.capacity == 2
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.25)

    def test_empty_cache_hit_rate_is_zero(self):
        assert PartialCache().stats().hit_rate == 0.0

    def test_clear_resets_counters_and_entries(self):
        cache = PartialCache(capacity=4)
        cache.get_many(np.array([1, 2]), rows_for)
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)


class TestValidation:
    @pytest.mark.parametrize("capacity", [0, -1])
    def test_nonpositive_capacity_rejected(self, capacity):
        with pytest.raises(ModelError, match="capacity"):
            PartialCache(capacity=capacity)

    def test_keys_must_be_1d(self):
        with pytest.raises(ModelError, match="1-D"):
            PartialCache().get_many(np.zeros((2, 2)), rows_for)

    def test_compute_row_count_mismatch_rejected(self):
        with pytest.raises(ModelError, match="rows"):
            PartialCache().get_many(
                np.array([1, 2]), lambda keys: rows_for(keys[:1])
            )
