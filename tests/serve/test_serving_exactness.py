"""Serving exactness: factorized predictions equal dense predictions.

The invariant mirrors the training side: the factorized predictor and
the materialized predictor must produce the same outputs as running the
fitted dense model over the materialized join — on binary *and*
multi-way star joins, for whole-table scoring and for request batches,
with pinned and with bounded partial caches.
"""

import warnings

import numpy as np
import pytest

from repro.core.api import fit_gmm, fit_nn, predict_gmm, predict_nn
from repro.data.synthetic import (
    DimensionSpec,
    StarSchemaConfig,
    generate_star,
)
from repro.errors import ModelError
from repro.join.reference import nested_loop_join
from repro.nn.network import MLP
from repro.serve.predictor import (
    FactorizedGMMPredictor,
    FactorizedNNPredictor,
    MaterializedGMMPredictor,
    MaterializedNNPredictor,
)


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture(params=["binary", "multiway"])
def fitted(request, db):
    """One fitted GMM + NN per join shape, with the dense join oracle."""
    if request.param == "binary":
        config = StarSchemaConfig.binary(
            n_s=500, n_r=25, d_s=3, d_r=5, with_target=True, seed=7
        )
    else:
        config = StarSchemaConfig(
            n_s=400,
            d_s=3,
            dimensions=(DimensionSpec(15, 4), DimensionSpec(9, 2)),
            with_target=True,
            seed=11,
        )
    star = generate_star(db, config)
    gmm = fit_gmm(db, star.spec, n_components=3, max_iter=3, seed=1)
    nn = fit_nn(db, star.spec, hidden_sizes=(8,), epochs=2, seed=1)
    oracle = nested_loop_join(db, star.spec)
    return star.spec, gmm, nn, oracle


def request_slice(db, spec, stop):
    """The first ``stop`` fact tuples as a (features, fks) request."""
    fact = spec.resolve(db).fact
    rows = fact.scan()[:stop]
    features = fact.project_features(rows)
    fks = {
        dim.relation: rows[:, fact.schema.fk_position(dim.relation)]
        .astype(np.int64)
        for dim in spec.dimensions
    }
    return features, fks


class TestGMMExactness:
    def test_predict_all_matches_dense_model(self, db, fitted):
        spec, gmm, _, oracle = fitted
        dense_labels = gmm.model.predict(oracle.features)
        factorized = FactorizedGMMPredictor(db, spec, gmm.model)
        materialized = MaterializedGMMPredictor(db, spec, gmm.model)
        np.testing.assert_array_equal(
            factorized.predict_all(), dense_labels
        )
        np.testing.assert_array_equal(
            materialized.predict_all(), dense_labels
        )

    def test_log_gaussians_match_to_float_associativity(self, db, fitted):
        spec, gmm, _, oracle = fitted
        features, fks = request_slice(db, spec, 64)
        factorized = FactorizedGMMPredictor(db, spec, gmm.model)
        np.testing.assert_allclose(
            factorized.log_gaussians(features, fks),
            gmm.model.log_gaussians(oracle.features[:64]),
            rtol=1e-9, atol=1e-9,
        )

    def test_score_samples_match(self, db, fitted):
        spec, gmm, _, oracle = fitted
        features, fks = request_slice(db, spec, 50)
        factorized = FactorizedGMMPredictor(db, spec, gmm.model)
        np.testing.assert_allclose(
            factorized.score_samples(features, fks),
            gmm.model.score_samples(oracle.features[:50]),
            rtol=1e-9, atol=1e-9,
        )

    def test_bounded_cache_is_still_exact(self, db, fitted):
        spec, gmm, _, oracle = fitted
        factorized = FactorizedGMMPredictor(
            db, spec, gmm.model, cache_entries=3
        )
        np.testing.assert_array_equal(
            factorized.predict_all(), gmm.model.predict(oracle.features)
        )
        assert any(cache.evictions > 0 for cache in factorized.caches)

    def test_api_strategies_agree(self, db, fitted):
        spec, gmm, _, oracle = fitted
        dense_labels = gmm.model.predict(oracle.features)
        for strategy in ("factorized", "materialized", "F", "M"):
            np.testing.assert_array_equal(
                predict_gmm(db, spec, gmm, strategy=strategy),
                dense_labels,
            )


class TestNNExactness:
    def test_predict_all_matches_dense_model(self, db, fitted):
        spec, _, nn, oracle = fitted
        dense_outputs = nn.predict(oracle.features)
        factorized = FactorizedNNPredictor(db, spec, nn.model)
        materialized = MaterializedNNPredictor(db, spec, nn.model)
        np.testing.assert_allclose(
            factorized.predict_all(), dense_outputs,
            rtol=1e-12, atol=1e-12,
        )
        np.testing.assert_array_equal(
            materialized.predict_all(), dense_outputs
        )

    def test_request_batch_matches_whole_table_scoring(self, db, fitted):
        spec, _, nn, oracle = fitted
        features, fks = request_slice(db, spec, 40)
        factorized = FactorizedNNPredictor(db, spec, nn.model)
        np.testing.assert_allclose(
            factorized.predict(features, fks),
            nn.predict(oracle.features[:40]),
            rtol=1e-12, atol=1e-12,
        )

    def test_bounded_cache_is_still_exact(self, db, fitted):
        spec, _, nn, oracle = fitted
        factorized = FactorizedNNPredictor(
            db, spec, nn.model, cache_entries=2
        )
        np.testing.assert_allclose(
            factorized.predict_all(), nn.predict(oracle.features),
            rtol=1e-12, atol=1e-12,
        )
        assert any(cache.evictions > 0 for cache in factorized.caches)

    def test_api_strategies_agree(self, db, fitted):
        spec, _, nn, oracle = fitted
        dense_outputs = nn.predict(oracle.features)
        np.testing.assert_allclose(
            predict_nn(db, spec, nn), dense_outputs,
            rtol=1e-12, atol=1e-12,
        )
        np.testing.assert_array_equal(
            predict_nn(db, spec, nn, strategy="materialized"),
            dense_outputs,
        )


class TestRequestForms:
    """All accepted foreign-key spellings resolve identically."""

    def test_fk_spellings_agree(self, db, multiway_star):
        spec = multiway_star.spec
        nn = fit_nn(db, spec, hidden_sizes=(4,), epochs=1, seed=1)
        predictor = FactorizedNNPredictor(db, spec, nn.model)
        features, fks_dict = request_slice(db, spec, 20)
        as_list = [fks_dict[d.relation] for d in spec.dimensions]
        as_matrix = np.column_stack(as_list)
        reference = predictor.predict(features, fks_dict)
        np.testing.assert_array_equal(
            predictor.predict(features, as_list), reference
        )
        np.testing.assert_array_equal(
            predictor.predict(features, as_matrix), reference
        )

    def test_sequence_form_with_batch_size_equal_to_arity(
        self, db, multiway_star
    ):
        # A batch of exactly q rows must not be mistaken for an (n, q)
        # matrix when FKs arrive as the sequence-of-q-arrays form.
        spec = multiway_star.spec
        nn = fit_nn(db, spec, hidden_sizes=(4,), epochs=1, seed=1)
        predictor = FactorizedNNPredictor(db, spec, nn.model)
        features, fks_dict = request_slice(db, spec, spec.num_dimensions)
        as_list = [fks_dict[d.relation] for d in spec.dimensions]
        np.testing.assert_array_equal(
            predictor.predict(features, as_list),
            predictor.predict(features, fks_dict),
        )
        # ... and a nested Python list is row-major (n, q), also at
        # n == q: only lists of 1-D *numpy arrays* mean sequence form.
        as_nested = np.column_stack(as_list).tolist()
        np.testing.assert_array_equal(
            predictor.predict(features, as_nested),
            predictor.predict(features, fks_dict),
        )

    def test_binary_accepts_flat_fk_array(self, db, binary_star):
        spec = binary_star.spec
        gmm = fit_gmm(db, spec, n_components=2, max_iter=2, seed=1)
        predictor = FactorizedGMMPredictor(db, spec, gmm.model)
        features, fks = request_slice(db, spec, 15)
        (flat,) = fks.values()
        np.testing.assert_array_equal(
            predictor.predict(features, flat),
            predictor.predict(features, fks),
        )

    def test_single_row_request(self, db, binary_star):
        spec = binary_star.spec
        gmm = fit_gmm(db, spec, n_components=2, max_iter=2, seed=1)
        predictor = FactorizedGMMPredictor(db, spec, gmm.model)
        features, fks = request_slice(db, spec, 1)
        labels = predictor.predict(features[0], fks)
        assert labels.shape == (1,)

    def test_empty_request_batch(self, db, binary_star):
        # A serving tier can legitimately receive an empty batch.
        spec = binary_star.spec
        gmm = fit_gmm(db, spec, n_components=2, max_iter=2, seed=1)
        nn = fit_nn(db, spec, hidden_sizes=(4,), epochs=1, seed=1)
        no_rows = np.zeros((0, 3))
        no_keys = np.zeros(0, dtype=np.int64)
        assert FactorizedGMMPredictor(db, spec, gmm.model).predict(
            no_rows, no_keys
        ).shape == (0,)
        assert FactorizedNNPredictor(db, spec, nn.model).predict(
            no_rows, no_keys
        ).shape == (0, 1)


class TestValidation:
    def test_wrong_fact_width_rejected(self, db, binary_star):
        spec = binary_star.spec
        gmm = fit_gmm(db, spec, n_components=2, max_iter=2, seed=1)
        predictor = FactorizedGMMPredictor(db, spec, gmm.model)
        with pytest.raises(ModelError, match="width"):
            predictor.predict(np.zeros((4, 7)), np.zeros(4, dtype=int))

    def test_fk_length_mismatch_rejected(self, db, binary_star):
        spec = binary_star.spec
        nn = fit_nn(db, spec, hidden_sizes=(4,), epochs=1, seed=1)
        predictor = FactorizedNNPredictor(db, spec, nn.model)
        with pytest.raises(ModelError, match="foreign keys"):
            predictor.predict(np.zeros((4, 3)), np.zeros(3, dtype=int))

    def test_missing_dimension_keys_rejected(self, db, multiway_star):
        spec = multiway_star.spec
        nn = fit_nn(db, spec, hidden_sizes=(4,), epochs=1, seed=1)
        predictor = FactorizedNNPredictor(db, spec, nn.model)
        with pytest.raises(ModelError, match="missing foreign keys"):
            predictor.predict(
                np.zeros((2, 3)), {"R1": np.zeros(2, dtype=int)}
            )

    def test_model_join_width_mismatch_rejected(self, db, binary_star):
        # The binary_star join yields 8 features; this net expects 5.
        model = MLP((5, 4, 1))
        with pytest.raises(ModelError, match="inputs"):
            FactorizedNNPredictor(db, binary_star.spec, model)

    def test_streaming_strategy_rejected_for_serving(self, db, binary_star):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, seed=1
        )
        with pytest.raises(ModelError, match="training-only"):
            predict_gmm(db, binary_star.spec, gmm, strategy="streaming")

    def test_half_specified_request_rejected(self, db, binary_star):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, seed=1
        )
        with pytest.raises(ModelError, match="both"):
            predict_gmm(db, binary_star.spec, gmm, np.zeros((2, 3)))
