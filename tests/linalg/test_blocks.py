"""Block layout partitioning and reassembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.linalg.blocks import BlockLayout


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            BlockLayout([])

    def test_negative_rejected(self):
        with pytest.raises(SchemaError):
            BlockLayout([3, -1])

    def test_all_zero_rejected(self):
        with pytest.raises(SchemaError):
            BlockLayout([0, 0])

    def test_zero_sized_block_allowed_alongside_nonzero(self):
        layout = BlockLayout([0, 3])
        assert layout.total == 3

    def test_geometry(self):
        layout = BlockLayout([2, 3, 1])
        assert layout.nblocks == 3
        assert layout.total == 6
        assert layout.offsets == (0, 2, 5, 6)
        assert layout.slice_of(1) == slice(2, 5)

    def test_slice_out_of_range(self):
        with pytest.raises(SchemaError):
            BlockLayout([2]).slice_of(1)


class TestSplitting:
    @pytest.fixture
    def layout(self):
        return BlockLayout([2, 3])

    def test_split_vector(self, layout, rng):
        v = rng.normal(size=5)
        a, b = layout.split_vector(v)
        np.testing.assert_array_equal(a, v[:2])
        np.testing.assert_array_equal(b, v[2:])

    def test_split_batch(self, layout, rng):
        m = rng.normal(size=(7, 5))
        a, b = layout.split_vector(m)
        np.testing.assert_array_equal(a, m[:, :2])
        np.testing.assert_array_equal(b, m[:, 2:])

    def test_split_vector_wrong_width(self, layout):
        with pytest.raises(SchemaError):
            layout.split_vector(np.zeros(4))

    def test_split_matrix_grid(self, layout, rng):
        m = rng.normal(size=(5, 5))
        blocks = layout.split_matrix(m)
        np.testing.assert_array_equal(blocks[0][0], m[:2, :2])
        np.testing.assert_array_equal(blocks[0][1], m[:2, 2:])
        np.testing.assert_array_equal(blocks[1][0], m[2:, :2])
        np.testing.assert_array_equal(blocks[1][1], m[2:, 2:])

    def test_split_matrix_wrong_shape(self, layout):
        with pytest.raises(SchemaError):
            layout.split_matrix(np.zeros((5, 4)))

    def test_split_columns(self, layout, rng):
        w = rng.normal(size=(4, 5))
        ws, wr = layout.split_columns(w)
        np.testing.assert_array_equal(ws, w[:, :2])
        np.testing.assert_array_equal(wr, w[:, 2:])

    def test_split_columns_requires_2d(self, layout):
        with pytest.raises(SchemaError):
            layout.split_columns(np.zeros(5))


class TestAssembly:
    def test_assemble_vector_inverts_split(self, rng):
        layout = BlockLayout([1, 4, 2])
        v = rng.normal(size=7)
        np.testing.assert_array_equal(
            layout.assemble_vector(layout.split_vector(v)), v
        )

    def test_assemble_matrix_inverts_split(self, rng):
        layout = BlockLayout([2, 1, 3])
        m = rng.normal(size=(6, 6))
        np.testing.assert_array_equal(
            layout.assemble_matrix(layout.split_matrix(m)), m
        )

    def test_assemble_vector_wrong_count(self):
        layout = BlockLayout([2, 2])
        with pytest.raises(SchemaError):
            layout.assemble_vector([np.zeros(2)])

    def test_assemble_vector_wrong_widths(self):
        layout = BlockLayout([2, 2])
        with pytest.raises(SchemaError):
            layout.assemble_vector([np.zeros(3), np.zeros(1)])


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                   max_size=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_split_assemble_round_trip_property(sizes, seed):
    """split ∘ assemble is the identity for any block partition."""
    layout = BlockLayout(sizes)
    rng = np.random.default_rng(seed)
    vector = rng.normal(size=layout.total)
    matrix = rng.normal(size=(layout.total, layout.total))
    np.testing.assert_array_equal(
        layout.assemble_vector(layout.split_vector(vector)), vector
    )
    np.testing.assert_array_equal(
        layout.assemble_matrix(layout.split_matrix(matrix)), matrix
    )
