"""Grouped reductions: the primitive every reuse opportunity rests on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.linalg.groupsum import GroupIndex, codes_for_keys


class TestGroupIndexValidation:
    def test_two_dim_codes_rejected(self):
        with pytest.raises(ModelError):
            GroupIndex(np.zeros((2, 2), dtype=np.int64), 4)

    def test_float_codes_rejected(self):
        with pytest.raises(ModelError, match="integers"):
            GroupIndex(np.array([0.0, 1.0]), 2)

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ModelError, match="out of range"):
            GroupIndex(np.array([0, 5]), 3)

    def test_negative_codes_rejected(self):
        with pytest.raises(ModelError, match="out of range"):
            GroupIndex(np.array([-1, 0]), 3)

    def test_zero_groups_rejected(self):
        with pytest.raises(ModelError):
            GroupIndex(np.array([], dtype=np.int64), 0)

    def test_counts(self):
        index = GroupIndex(np.array([0, 2, 2, 0, 2]), 4)
        np.testing.assert_array_equal(index.counts, [2, 0, 3, 0])


class TestReductions:
    @pytest.fixture
    def index(self):
        return GroupIndex(np.array([1, 0, 1, 2, 1]), 3)

    def test_sum_weights(self, index):
        weights = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        np.testing.assert_allclose(
            index.sum_weights(weights), [2.0, 9.0, 4.0]
        )

    def test_sum_weights_shape_checked(self, index):
        with pytest.raises(ModelError):
            index.sum_weights(np.ones(3))

    def test_sum_rows_unweighted(self, index, rng):
        values = rng.normal(size=(5, 2))
        expected = np.zeros((3, 2))
        for i, code in enumerate([1, 0, 1, 2, 1]):
            expected[code] += values[i]
        np.testing.assert_allclose(index.sum_rows(values), expected)

    def test_sum_rows_weighted(self, index, rng):
        values = rng.normal(size=(5, 3))
        weights = rng.uniform(0.5, 2.0, size=5)
        expected = np.zeros((3, 3))
        for i, code in enumerate([1, 0, 1, 2, 1]):
            expected[code] += weights[i] * values[i]
        np.testing.assert_allclose(
            index.sum_rows(values, weights), expected
        )

    def test_sum_rows_one_dim_promoted(self, index):
        out = index.sum_rows(np.ones(5))
        assert out.shape == (3, 1)

    def test_sum_rows_presorted_matches(self, index, rng):
        values = rng.normal(size=(5, 2))
        weights = rng.uniform(0.5, 2.0, size=5)
        direct = index.sum_rows(values, weights)
        presorted = index.sum_rows(
            index.presort(values), weights[index.order], presorted=True
        )
        np.testing.assert_allclose(direct, presorted)

    def test_empty_groups_stay_zero(self):
        index = GroupIndex(np.array([0, 0]), 5)
        out = index.sum_rows(np.ones((2, 2)))
        np.testing.assert_array_equal(out[1:], np.zeros((4, 2)))

    def test_gather(self, index, rng):
        per_group = rng.normal(size=(3, 2))
        gathered = index.gather(per_group)
        np.testing.assert_array_equal(
            gathered, per_group[[1, 0, 1, 2, 1]]
        )

    def test_gather_wrong_rows(self, index):
        with pytest.raises(ModelError):
            index.gather(np.zeros((4, 2)))

    def test_empty_index(self):
        index = GroupIndex(np.array([], dtype=np.int64), 3)
        assert index.n == 0
        out = index.sum_rows(np.zeros((0, 2)))
        np.testing.assert_array_equal(out, np.zeros((3, 2)))


class TestCodesForKeys:
    def test_basic_translation(self):
        dim_keys = np.array([100, 7, 55])
        fact_keys = np.array([55, 100, 7, 7])
        codes = codes_for_keys(fact_keys, dim_keys)
        np.testing.assert_array_equal(dim_keys[codes], fact_keys)

    def test_dangling_raises(self):
        with pytest.raises(ModelError, match="dangling"):
            codes_for_keys(np.array([1, 999]), np.array([1, 2, 3]))

    def test_duplicate_dim_keys_raise(self):
        with pytest.raises(ModelError, match="duplicates"):
            codes_for_keys(np.array([1]), np.array([1, 1]))

    def test_empty_fact_keys(self):
        codes = codes_for_keys(
            np.array([], dtype=np.int64), np.array([3, 1])
        )
        assert codes.shape == (0,)

    def test_single_key(self):
        codes = codes_for_keys(np.array([42, 42]), np.array([42]))
        np.testing.assert_array_equal(codes, [0, 0])


@st.composite
def grouped_data(draw):
    m = draw(st.integers(min_value=1, max_value=8))
    n = draw(st.integers(min_value=0, max_value=60))
    c = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, m, size=n)
    values = rng.normal(size=(n, c))
    weights = rng.uniform(0.1, 2.0, size=n)
    return codes, m, values, weights


@given(data=grouped_data())
@settings(max_examples=60, deadline=None)
def test_sum_rows_matches_loop_reference(data):
    """Vectorized grouped sums equal the obvious Python loop."""
    codes, m, values, weights = data
    index = GroupIndex(codes, m)
    expected = np.zeros((m, values.shape[1]))
    for i in range(codes.size):
        expected[codes[i]] += weights[i] * values[i]
    np.testing.assert_allclose(
        index.sum_rows(values, weights), expected, atol=1e-12
    )


@given(data=grouped_data())
@settings(max_examples=60, deadline=None)
def test_gather_then_sum_identity(data):
    """Σ_groups sum_rows = Σ_rows values (mass conservation)."""
    codes, m, values, weights = data
    index = GroupIndex(codes, m)
    np.testing.assert_allclose(
        index.sum_rows(values, weights).sum(axis=0),
        (weights[:, None] * values).sum(axis=0),
        atol=1e-10,
    )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=1, max_value=12),
    n=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=60, deadline=None)
def test_codes_for_keys_round_trip(seed, m, n):
    """For arbitrary unique keys and FK draws: keys[codes] == fks."""
    rng = np.random.default_rng(seed)
    dim_keys = rng.choice(10_000, size=m, replace=False)
    fact_keys = dim_keys[rng.integers(0, m, size=n)]
    codes = codes_for_keys(fact_keys, dim_keys)
    np.testing.assert_array_equal(dim_keys[codes], fact_keys)
