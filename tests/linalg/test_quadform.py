"""Exactness of the factorized quadratic form (Eq. 7–12, 19–21)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.linalg.design import FactorizedDesign
from repro.linalg.groupsum import GroupIndex
from repro.linalg.quadform import (
    binary_quadratic_form_terms,
    dense_quadratic_form,
    factorized_quadratic_form,
)


def random_design(rng, n, d_s, dims):
    fact = rng.normal(size=(n, d_s))
    blocks = [rng.normal(size=(m, d)) for m, d in dims]
    groups = [
        GroupIndex(rng.integers(0, m, size=n), m) for m, _ in dims
    ]
    return FactorizedDesign(fact, blocks, groups)


def random_spd(rng, d):
    a = rng.normal(size=(d, d))
    return a @ a.T + d * np.eye(d)


class TestDenseQuadform:
    def test_matches_explicit_loop(self, rng):
        centered = rng.normal(size=(10, 4))
        matrix = random_spd(rng, 4)
        expected = np.array(
            [row @ matrix @ row for row in centered]
        )
        np.testing.assert_allclose(
            dense_quadratic_form(centered, matrix), expected
        )

    def test_shape_mismatch(self, rng):
        with pytest.raises(ModelError):
            dense_quadratic_form(rng.normal(size=(5, 3)), np.eye(4))

    def test_identity_matrix_gives_squared_norm(self, rng):
        centered = rng.normal(size=(8, 3))
        np.testing.assert_allclose(
            dense_quadratic_form(centered, np.eye(3)),
            (centered**2).sum(axis=1),
        )


class TestFactorizedBinary:
    def test_matches_dense(self, rng):
        design = random_design(rng, 60, 3, [(7, 4)])
        mean = rng.normal(size=7)
        matrix = random_spd(rng, 7)
        dense = dense_quadratic_form(design.densify() - mean, matrix)
        fact = factorized_quadratic_form(design, mean, matrix)
        np.testing.assert_allclose(fact, dense, rtol=1e-10)

    def test_asymmetric_matrix_also_exact(self, rng):
        # The decomposition never assumes symmetry.
        design = random_design(rng, 30, 2, [(5, 3)])
        mean = rng.normal(size=5)
        matrix = rng.normal(size=(5, 5))
        np.testing.assert_allclose(
            factorized_quadratic_form(design, mean, matrix),
            dense_quadratic_form(design.densify() - mean, matrix),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_matrix_shape_checked(self, rng):
        design = random_design(rng, 10, 2, [(3, 2)])
        with pytest.raises(ModelError):
            factorized_quadratic_form(
                design, np.zeros(4), np.eye(5)
            )

    def test_terms_sum_to_total(self, rng):
        design = random_design(rng, 40, 3, [(6, 5)])
        mean = rng.normal(size=8)
        matrix = random_spd(rng, 8)
        terms = binary_quadratic_form_terms(design, mean, matrix)
        assert set(terms) == {"UL", "UR", "LL", "LR"}
        total = terms["UL"] + terms["UR"] + terms["LL"] + terms["LR"]
        np.testing.assert_allclose(
            total,
            dense_quadratic_form(design.densify() - mean, matrix),
            rtol=1e-10,
        )

    def test_ur_equals_ll_for_symmetric_matrix(self, rng):
        design = random_design(rng, 40, 3, [(6, 5)])
        mean = rng.normal(size=8)
        matrix = random_spd(rng, 8)
        terms = binary_quadratic_form_terms(design, mean, matrix)
        np.testing.assert_allclose(terms["UR"], terms["LL"], rtol=1e-9)

    def test_lr_constant_within_group(self, rng):
        """LR depends only on the dimension tuple — the reuse claim."""
        design = random_design(rng, 50, 2, [(4, 3)])
        mean = rng.normal(size=5)
        matrix = random_spd(rng, 5)
        terms = binary_quadratic_form_terms(design, mean, matrix)
        codes = design.groups[0].codes
        for code in np.unique(codes):
            values = terms["LR"][codes == code]
            assert np.ptp(values) < 1e-12

    def test_terms_require_binary(self, rng):
        design = random_design(rng, 10, 2, [(3, 2), (3, 2)])
        with pytest.raises(ModelError, match="binary"):
            binary_quadratic_form_terms(
                design, np.zeros(6), np.eye(6)
            )


class TestFactorizedMultiway:
    def test_three_way_matches_dense(self, rng):
        design = random_design(rng, 80, 2, [(5, 3), (4, 4)])
        mean = rng.normal(size=9)
        matrix = random_spd(rng, 9)
        np.testing.assert_allclose(
            factorized_quadratic_form(design, mean, matrix),
            dense_quadratic_form(design.densify() - mean, matrix),
            rtol=1e-10,
        )

    def test_four_way_matches_dense(self, rng):
        design = random_design(rng, 50, 2, [(3, 2), (4, 3), (2, 2)])
        mean = rng.normal(size=9)
        matrix = random_spd(rng, 9)
        np.testing.assert_allclose(
            factorized_quadratic_form(design, mean, matrix),
            dense_quadratic_form(design.densify() - mean, matrix),
            rtol=1e-10,
        )


@st.composite
def quadform_case(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n = draw(st.integers(min_value=1, max_value=50))
    d_s = draw(st.integers(min_value=1, max_value=4))
    q = draw(st.integers(min_value=1, max_value=3))
    dims = [
        (
            draw(st.integers(min_value=1, max_value=6)),
            draw(st.integers(min_value=1, max_value=4)),
        )
        for _ in range(q)
    ]
    return seed, n, d_s, dims


@given(case=quadform_case())
@settings(max_examples=60, deadline=None)
def test_factorized_quadform_exact_property(case):
    """Eq. 19 is an exact decomposition for arbitrary shapes/codes."""
    seed, n, d_s, dims = case
    rng = np.random.default_rng(seed)
    design = random_design(rng, n, d_s, dims)
    d = design.d
    mean = rng.normal(size=d)
    matrix = random_spd(rng, d)
    np.testing.assert_allclose(
        factorized_quadratic_form(design, mean, matrix),
        dense_quadratic_form(design.densify() - mean, matrix),
        rtol=1e-8,
        atol=1e-8,
    )
