"""Factorized joined-table statistics match the dense computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.linalg.design import FactorizedDesign
from repro.linalg.groupsum import GroupIndex
from repro.linalg.stats import (
    factorized_mean,
    factorized_moments,
    merge_moments,
    standardize,
)


def make_design(rng, n=80, d_s=3, dims=((7, 4), (5, 2))):
    fact = rng.normal(loc=2.0, scale=3.0, size=(n, d_s))
    blocks = [rng.normal(size=(m, d)) * 5 for m, d in dims]
    groups = [GroupIndex(rng.integers(0, m, size=n), m) for m, _ in dims]
    return FactorizedDesign(fact, blocks, groups)


class TestMoments:
    def test_mean_matches_dense(self, rng):
        design = make_design(rng)
        np.testing.assert_allclose(
            factorized_mean(design),
            design.densify().mean(axis=0),
            rtol=1e-10,
        )

    def test_variance_matches_dense(self, rng):
        design = make_design(rng)
        moments = factorized_moments(design)
        dense = design.densify()
        np.testing.assert_allclose(
            moments.variance, dense.var(axis=0), rtol=1e-8, atol=1e-10
        )
        np.testing.assert_allclose(
            moments.std, dense.std(axis=0), rtol=1e-8, atol=1e-10
        )
        assert moments.count == design.n

    def test_empty_design_rejected(self, rng):
        design = FactorizedDesign(
            np.empty((0, 2)),
            [rng.normal(size=(3, 2))],
            [GroupIndex(np.empty(0, dtype=np.int64), 3)],
        )
        with pytest.raises(ModelError):
            factorized_mean(design)

    def test_unreferenced_dimension_rows_ignored(self, rng):
        """Rows of R that no fact tuple references must not influence
        the joined-table statistics."""
        n, m = 40, 6
        codes = rng.integers(0, 3, size=n)  # rows 3..5 never referenced
        block = rng.normal(size=(m, 2))
        design = FactorizedDesign(
            rng.normal(size=(n, 1)), [block], [GroupIndex(codes, m)]
        )
        np.testing.assert_allclose(
            factorized_mean(design),
            design.densify().mean(axis=0),
            rtol=1e-10,
        )


class TestStandardize:
    def test_standardized_dense_view(self, rng):
        design = make_design(rng)
        standardized = standardize(design)
        dense = standardized.densify()
        np.testing.assert_allclose(
            dense.mean(axis=0), 0.0, atol=1e-10
        )
        np.testing.assert_allclose(dense.std(axis=0), 1.0, rtol=1e-8)

    def test_matches_dense_standardization(self, rng):
        design = make_design(rng)
        raw = design.densify()
        expected = (raw - raw.mean(axis=0)) / raw.std(axis=0)
        np.testing.assert_allclose(
            standardize(design).densify(), expected, rtol=1e-8,
            atol=1e-10,
        )

    def test_constant_feature_centered_not_scaled(self, rng):
        n, m = 30, 4
        fact = np.full((n, 1), 7.0)
        design = FactorizedDesign(
            fact,
            [rng.normal(size=(m, 2))],
            [GroupIndex(rng.integers(0, m, size=n), m)],
        )
        dense = standardize(design).densify()
        np.testing.assert_allclose(dense[:, 0], 0.0, atol=1e-12)

    def test_groups_shared_not_copied(self, rng):
        design = make_design(rng)
        standardized = standardize(design)
        assert standardized.groups[0] is design.groups[0]

    def test_external_moments_shape_checked(self, rng):
        from repro.linalg.stats import JoinedMoments

        design = make_design(rng)
        bad = JoinedMoments(
            mean=np.zeros(3), variance=np.ones(3), count=10
        )
        with pytest.raises(ModelError):
            standardize(design, bad)


class TestMergeMoments:
    def test_merge_equals_whole(self, rng):
        design = make_design(rng, n=100)
        whole = factorized_moments(design)
        indices = np.arange(design.n)
        first = FactorizedDesign(
            design.fact_block[:40],
            design.dim_blocks,
            [GroupIndex(g.codes[:40], g.num_groups)
             for g in design.groups],
        )
        second = FactorizedDesign(
            design.fact_block[40:],
            design.dim_blocks,
            [GroupIndex(g.codes[40:], g.num_groups)
             for g in design.groups],
        )
        merged = merge_moments(
            [factorized_moments(first), factorized_moments(second)]
        )
        np.testing.assert_allclose(merged.mean, whole.mean, rtol=1e-10)
        np.testing.assert_allclose(
            merged.variance, whole.variance, rtol=1e-8, atol=1e-12
        )
        assert merged.count == whole.count

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            merge_moments([])


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=60),
    m=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_moments_property(seed, n, m):
    """Factorized moments equal dense moments for arbitrary joins."""
    rng = np.random.default_rng(seed)
    design = FactorizedDesign(
        rng.normal(size=(n, 2)),
        [rng.normal(size=(m, 3))],
        [GroupIndex(rng.integers(0, m, size=n), m)],
    )
    moments = factorized_moments(design)
    dense = design.densify()
    np.testing.assert_allclose(
        moments.mean, dense.mean(axis=0), rtol=1e-8, atol=1e-10
    )
    np.testing.assert_allclose(
        moments.variance, dense.var(axis=0), rtol=1e-7, atol=1e-9
    )
