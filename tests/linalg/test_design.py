"""FactorizedDesign: the factorized batch representation."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.linalg.blocks import BlockLayout
from repro.linalg.design import FactorizedDesign
from repro.linalg.groupsum import GroupIndex


def make_design(rng, n=40, d_s=3, dims=((6, 2), (4, 5))):
    fact = rng.normal(size=(n, d_s))
    blocks, groups = [], []
    for m, d in dims:
        blocks.append(rng.normal(size=(m, d)))
        groups.append(GroupIndex(rng.integers(0, m, size=n), m))
    return FactorizedDesign(fact, blocks, groups)


class TestValidation:
    def test_mismatched_groups(self, rng):
        fact = rng.normal(size=(10, 2))
        block = rng.normal(size=(3, 2))
        with pytest.raises(ModelError, match="group"):
            FactorizedDesign(fact, [block], [])

    def test_group_row_mismatch(self, rng):
        fact = rng.normal(size=(10, 2))
        block = rng.normal(size=(3, 2))
        group = GroupIndex(np.zeros(9, dtype=np.int64), 3)
        with pytest.raises(ModelError, match="indexes"):
            FactorizedDesign(fact, [block], [group])

    def test_group_count_vs_block_rows(self, rng):
        fact = rng.normal(size=(10, 2))
        block = rng.normal(size=(3, 2))
        group = GroupIndex(np.zeros(10, dtype=np.int64), 4)
        with pytest.raises(ModelError, match="groups"):
            FactorizedDesign(fact, [block], [group])

    def test_one_dim_fact_rejected(self, rng):
        with pytest.raises(ModelError):
            FactorizedDesign(rng.normal(size=10), [], [])


class TestGeometry:
    def test_layout(self, rng):
        design = make_design(rng)
        assert design.layout == BlockLayout([3, 2, 5])
        assert design.d == 10
        assert design.n == 40
        assert design.num_dimensions == 2

    def test_stored_values_less_than_dense(self, rng):
        design = make_design(rng, n=100, d_s=2, dims=((5, 8),))
        dense_values = design.n * design.d
        assert design.stored_values < dense_values
        assert design.stored_values == 100 * 2 + 5 * 8


class TestDensify:
    def test_densify_matches_manual_gather(self, rng):
        design = make_design(rng, n=25, d_s=2, dims=((4, 3),))
        dense = design.densify()
        assert dense.shape == (25, 5)
        np.testing.assert_array_equal(dense[:, :2], design.fact_block)
        np.testing.assert_array_equal(
            dense[:, 2:],
            design.dim_blocks[0][design.groups[0].codes],
        )

    def test_from_dense_round_trip(self, rng):
        design = make_design(rng)
        dense = design.densify()
        rebuilt = FactorizedDesign.from_dense(
            dense,
            design.layout,
            [g.codes for g in design.groups],
            design.dim_blocks,
        )
        np.testing.assert_array_equal(rebuilt.densify(), dense)


class TestPresortCache:
    def test_presorted_fact_cached(self, rng):
        design = make_design(rng)
        first = design.presorted_fact(0)
        second = design.presorted_fact(0)
        assert first is second
        np.testing.assert_array_equal(
            first, design.fact_block[design.groups[0].order]
        )

    def test_presorted_per_dimension(self, rng):
        design = make_design(rng)
        a = design.presorted_fact(0)
        b = design.presorted_fact(1)
        # Orders generally differ across dimensions.
        assert a.shape == b.shape
