"""Exactness of factorized weighted sums/outer products (Eq. 13–18, 22–24)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.linalg.design import FactorizedDesign
from repro.linalg.groupsum import GroupIndex
from repro.linalg.outer import (
    dense_weighted_outer,
    dense_weighted_sum,
    factorized_count_outer,
    factorized_weighted_outer,
    factorized_weighted_sum,
)


def random_design(rng, n, d_s, dims):
    fact = rng.normal(size=(n, d_s))
    blocks = [rng.normal(size=(m, d)) for m, d in dims]
    groups = [GroupIndex(rng.integers(0, m, size=n), m) for m, _ in dims]
    return FactorizedDesign(fact, blocks, groups)


class TestDenseReferences:
    def test_weighted_sum(self, rng):
        rows = rng.normal(size=(12, 3))
        weights = rng.uniform(size=12)
        np.testing.assert_allclose(
            dense_weighted_sum(rows, weights),
            sum(w * r for w, r in zip(weights, rows)),
        )

    def test_weighted_outer(self, rng):
        centered = rng.normal(size=(9, 4))
        weights = rng.uniform(size=9)
        expected = sum(
            w * np.outer(row, row)
            for w, row in zip(weights, centered)
        )
        np.testing.assert_allclose(
            dense_weighted_outer(centered, weights), expected
        )

    def test_shape_mismatch(self, rng):
        with pytest.raises(ModelError):
            dense_weighted_sum(rng.normal(size=(4, 2)), np.ones(3))
        with pytest.raises(ModelError):
            dense_weighted_outer(rng.normal(size=(4, 2)), np.ones(3))


class TestFactorizedSum:
    def test_binary_matches_dense(self, rng):
        design = random_design(rng, 50, 3, [(6, 4)])
        weights = rng.uniform(0.1, 1.0, size=50)
        np.testing.assert_allclose(
            factorized_weighted_sum(design, weights),
            dense_weighted_sum(design.densify(), weights),
            rtol=1e-10,
        )

    def test_multiway_matches_dense(self, rng):
        design = random_design(rng, 70, 2, [(5, 3), (3, 4)])
        weights = rng.uniform(0.1, 1.0, size=70)
        np.testing.assert_allclose(
            factorized_weighted_sum(design, weights),
            dense_weighted_sum(design.densify(), weights),
            rtol=1e-10,
        )

    def test_weights_shape_checked(self, rng):
        design = random_design(rng, 10, 2, [(3, 2)])
        with pytest.raises(ModelError):
            factorized_weighted_sum(design, np.ones(9))


class TestFactorizedOuter:
    def test_binary_matches_dense(self, rng):
        design = random_design(rng, 60, 3, [(7, 5)])
        mean = rng.normal(size=8)
        weights = rng.uniform(0.1, 1.0, size=60)
        np.testing.assert_allclose(
            factorized_weighted_outer(design, mean, weights),
            dense_weighted_outer(design.densify() - mean, weights),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_multiway_matches_dense(self, rng):
        design = random_design(rng, 80, 2, [(4, 3), (6, 2)])
        mean = rng.normal(size=7)
        weights = rng.uniform(0.1, 1.0, size=80)
        np.testing.assert_allclose(
            factorized_weighted_outer(design, mean, weights),
            dense_weighted_outer(design.densify() - mean, weights),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_result_is_symmetric(self, rng):
        design = random_design(rng, 40, 2, [(5, 3)])
        mean = rng.normal(size=5)
        weights = rng.uniform(0.1, 1.0, size=40)
        out = factorized_weighted_outer(design, mean, weights)
        np.testing.assert_allclose(out, out.T, rtol=1e-12)

    def test_zero_weights_give_zero(self, rng):
        design = random_design(rng, 20, 2, [(3, 2)])
        out = factorized_weighted_outer(
            design, np.zeros(4), np.zeros(20)
        )
        np.testing.assert_array_equal(out, np.zeros((4, 4)))

    def test_weights_shape_checked(self, rng):
        design = random_design(rng, 10, 2, [(3, 2)])
        with pytest.raises(ModelError):
            factorized_weighted_outer(design, np.zeros(4), np.ones(11))

    def test_count_outer_is_gram_matrix(self, rng):
        design = random_design(rng, 30, 2, [(4, 3)])
        dense = design.densify()
        np.testing.assert_allclose(
            factorized_count_outer(design), dense.T @ dense, rtol=1e-9
        )


@st.composite
def outer_case(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n = draw(st.integers(min_value=1, max_value=40))
    d_s = draw(st.integers(min_value=1, max_value=4))
    q = draw(st.integers(min_value=1, max_value=3))
    dims = [
        (
            draw(st.integers(min_value=1, max_value=5)),
            draw(st.integers(min_value=1, max_value=4)),
        )
        for _ in range(q)
    ]
    return seed, n, d_s, dims


@given(case=outer_case())
@settings(max_examples=60, deadline=None)
def test_factorized_outer_exact_property(case):
    """Eq. 23 reassembles to the dense weighted outer product exactly."""
    seed, n, d_s, dims = case
    rng = np.random.default_rng(seed)
    design = random_design(rng, n, d_s, dims)
    mean = rng.normal(size=design.d)
    weights = rng.uniform(0.0, 2.0, size=n)
    np.testing.assert_allclose(
        factorized_weighted_outer(design, mean, weights),
        dense_weighted_outer(design.densify() - mean, weights),
        rtol=1e-8,
        atol=1e-8,
    )


@given(case=outer_case())
@settings(max_examples=60, deadline=None)
def test_factorized_sum_exact_property(case):
    """Eq. 22's per-relation split of Σ γ·x is exact."""
    seed, n, d_s, dims = case
    rng = np.random.default_rng(seed)
    design = random_design(rng, n, d_s, dims)
    weights = rng.uniform(0.0, 2.0, size=n)
    np.testing.assert_allclose(
        factorized_weighted_sum(design, weights),
        dense_weighted_sum(design.densify(), weights),
        rtol=1e-8,
        atol=1e-8,
    )
