"""The tentpole invariant: one FK dedup per batch per dimension.

Before the execution core, the runtime deduplicated twice — once in
the planner (distinct-RID counts) and again inside the chosen
predictor's gather/densify.  These tests pin the contract from both
ends: every execution path funnels through ``DedupPlan.for_batch``
exactly once per batch, and the modules downstream of the plan carry
no ``np.unique`` call of their own.
"""

import inspect
import warnings

import numpy as np
import pytest

import importlib

from repro.core.api import fit_gmm, fit_nn, serve, serve_runtime
from repro.fx.dedup import DedupPlan

# importlib avoids the name shadowing of ``repro.serve`` (the package)
# by ``repro.serve`` (the convenience function re-exported at top level).
serve_predictor = importlib.import_module("repro.serve.predictor")
fx_gather = importlib.import_module("repro.fx.gather")
runtime_planner = importlib.import_module("repro.runtime.planner")


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture
def count_dedups(monkeypatch):
    """Patch DedupPlan.for_batch with a call counter."""
    calls = []
    original = DedupPlan.for_batch.__func__

    def counting(cls, fks):
        calls.append(1)
        return original(cls, fks)

    monkeypatch.setattr(DedupPlan, "for_batch", classmethod(counting))
    return calls


def a_request(db, spec, n=64):
    fact = spec.resolve(db).fact
    rows = fact.scan()[:n]
    fk = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
    return fact.project_features(rows), fk


class TestNoStrayUnique:
    """Downstream modules must consume the plan, not re-dedup."""

    @pytest.mark.parametrize(
        "module",
        [serve_predictor, fx_gather, runtime_planner],
    )
    def test_module_has_no_unique_call(self, module):
        import ast

        tree = ast.parse(inspect.getsource(module))
        calls = [
            node.lineno
            for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "unique"
        ]
        assert calls == [], (
            f"{module.__name__} deduplicates on its own at lines "
            f"{calls}; consume the DedupPlan instead"
        )


class TestOneDedupPerBatch:
    def test_service_predict_builds_exactly_one_plan(
        self, db, binary_star, count_dedups
    ):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        service = serve(db)
        service.register_nn("n", nn, binary_star.spec)
        features, fk = a_request(db, binary_star.spec)
        count_dedups.clear()
        service.predict("n", features, fk)
        assert len(count_dedups) == 1
        service.close()

    @pytest.mark.parametrize("strategy", ["adaptive", "factorized",
                                          "materialized"])
    def test_runtime_batch_builds_exactly_one_plan(
        self, db, binary_star, count_dedups, strategy
    ):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, seed=1
        )
        features, fk = a_request(db, binary_star.spec)
        with serve_runtime(db, num_workers=1) as rt:
            rt.register_gmm("g", gmm, binary_star.spec,
                            strategy=strategy)
            count_dedups.clear()
            rt.predict("g", features, fk)
            # One plan per executed batch, shared by planner (adaptive
            # only) and predictor alike.
            assert len(count_dedups) == 1

    def test_explicit_plan_matches_internal_dedup(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        from repro.serve.predictor import make_predictor

        predictor = make_predictor(
            db, binary_star.spec, nn, kind="nn"
        )
        features, fk = a_request(db, binary_star.spec)
        plan = DedupPlan.for_batch([fk])
        np.testing.assert_array_equal(
            predictor.predict(features, fk, plan=plan),
            predictor.predict(features, fk),
        )

    def test_mismatched_plan_rejected(self, db, binary_star):
        from repro.errors import ModelError
        from repro.serve.predictor import make_predictor

        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        predictor = make_predictor(
            db, binary_star.spec, nn, kind="nn"
        )
        features, fk = a_request(db, binary_star.spec)
        stale = DedupPlan.for_batch([fk[:-1]])
        with pytest.raises(ModelError, match="plan"):
            predictor.predict(features, fk, plan=stale)
