"""The tentpole invariant: one FK dedup per batch per dimension.

Before the execution core, the runtime deduplicated twice — once in
the planner (distinct-RID counts) and again inside the chosen
predictor's gather/densify; the training access paths then kept a
third private factorization inside ``join/factorized.py``.  These
tests pin the contract from both ends: every execution path — serving
*and* training — funnels through ``DedupPlan.for_batch`` exactly once
per batch, and no module in the package outside ``fx/dedup.py``
deduplicates on its own (``np.unique`` is AST-banned repo-wide).
"""

import ast
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.api import fit_gmm, fit_nn, serve, serve_runtime
from repro.fx.dedup import DedupPlan

SRC_ROOT = Path(repro.__file__).resolve().parent
#: the one module allowed to call ``np.unique``
DEDUP_HOME = SRC_ROOT / "fx" / "dedup.py"


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture
def count_dedups(monkeypatch):
    """Patch DedupPlan.for_batch with a call counter."""
    calls = []
    original = DedupPlan.for_batch.__func__

    def counting(cls, fks):
        calls.append(1)
        return original(cls, fks)

    monkeypatch.setattr(DedupPlan, "for_batch", classmethod(counting))
    return calls


def a_request(db, spec, n=64):
    fact = spec.resolve(db).fact
    rows = fact.scan()[:n]
    fk = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
    return fact.project_features(rows), fk


def _unique_call_lines(path: Path) -> list[int]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "unique"
    ]


class TestNoStrayUnique:
    """No module outside ``fx/dedup.py`` may deduplicate on its own.

    Covers serving (``serve/``, ``runtime/``, ``fx/``) and — since the
    training refactor — the training stack too (``join/``, ``linalg/``,
    ``gmm/``, ``nn/``), plus ``storage/``: page-number dedups go
    through ``fx.dedup.distinct_values``, FK columns through
    ``DedupPlan.for_batch``.
    """

    @pytest.mark.parametrize(
        "path",
        sorted(SRC_ROOT.rglob("*.py")),
        ids=lambda p: str(p.relative_to(SRC_ROOT)),
    )
    def test_module_has_no_unique_call(self, path):
        if path == DEDUP_HOME:
            pytest.skip("fx/dedup.py is the dedup home")
        calls = _unique_call_lines(path)
        assert calls == [], (
            f"{path.relative_to(SRC_ROOT)} deduplicates on its own at "
            f"lines {calls}; consume a DedupPlan (FK columns) or "
            f"fx.dedup.distinct_values (page numbers, shard ids)"
        )

    def test_dedup_home_still_dedups(self):
        """Guard the scanner itself: the home module must register."""
        assert _unique_call_lines(DEDUP_HOME)


class TestOneDedupPerBatch:
    def test_service_predict_builds_exactly_one_plan(
        self, db, binary_star, count_dedups
    ):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        service = serve(db)
        service.register_nn("n", nn, binary_star.spec)
        features, fk = a_request(db, binary_star.spec)
        count_dedups.clear()
        service.predict("n", features, fk)
        assert len(count_dedups) == 1
        service.close()

    @pytest.mark.parametrize("strategy", ["adaptive", "factorized",
                                          "materialized"])
    def test_runtime_batch_builds_exactly_one_plan(
        self, db, binary_star, count_dedups, strategy
    ):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, seed=1
        )
        features, fk = a_request(db, binary_star.spec)
        with serve_runtime(db, num_workers=1) as rt:
            rt.register_gmm("g", gmm, binary_star.spec,
                            strategy=strategy)
            count_dedups.clear()
            rt.predict("g", features, fk)
            # One plan per executed batch, shared by planner (adaptive
            # only) and predictor alike.
            assert len(count_dedups) == 1

    def test_explicit_plan_matches_internal_dedup(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        from repro.serve.predictor import make_predictor

        predictor = make_predictor(
            db, binary_star.spec, nn, kind="nn"
        )
        features, fk = a_request(db, binary_star.spec)
        plan = DedupPlan.for_batch([fk])
        np.testing.assert_array_equal(
            predictor.predict(features, fk, plan=plan),
            predictor.predict(features, fk),
        )

    def test_mismatched_plan_rejected(self, db, binary_star):
        from repro.errors import ModelError
        from repro.serve.predictor import make_predictor

        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        predictor = make_predictor(
            db, binary_star.spec, nn, kind="nn"
        )
        features, fk = a_request(db, binary_star.spec)
        stale = DedupPlan.for_batch([fk[:-1]])
        with pytest.raises(ModelError, match="plan"):
            predictor.predict(features, fk, plan=stale)


class TestOneDedupPerTrainingBatch:
    """Training batches share the serving dedup: one plan per assembled
    block per pass, threaded through the engines untouched."""

    @pytest.mark.parametrize("access_name", ["factorized", "streaming"])
    def test_one_plan_per_block_per_pass(
        self, db, binary_star, count_dedups, access_name
    ):
        from repro.join.factorized import FactorizedJoin
        from repro.join.stream import StreamingJoin

        cls = (
            FactorizedJoin if access_name == "factorized" else
            StreamingJoin
        )
        access = cls(db, binary_star.spec, block_pages=2)
        count_dedups.clear()
        batches = list(access.batches())
        assert len(count_dedups) == len(batches)
        assert all(batch.plan is not None for batch in batches)

    def test_engine_kernels_never_rededup(self, db, binary_star,
                                          count_dedups):
        from repro.gmm.engines import FactorizedEMEngine
        from repro.gmm.init import initial_params
        from repro.gmm.model import ComponentPrecisions
        from repro.join.factorized import FactorizedJoin

        engine = FactorizedEMEngine(
            FactorizedJoin(db, binary_star.spec, block_pages=2),
            n_features=8,
        )
        params = initial_params(engine.init_sample(200), 2, seed=0)
        precisions = ComponentPrecisions(params.covariances, 1e-6)
        batches = list(engine.batches(0))
        count_dedups.clear()
        for batch in batches:
            gamma, _ = engine.estep_batch(batch, params, precisions)
            engine.mu_accumulate_batch(batch, gamma)
            engine.sigma_accumulate_batch(batch, gamma, params.means)
        assert count_dedups == []

    def test_gmm_fit_reports_dedup_counters(self, db, binary_star):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, seed=1
        )
        extra = gmm.fit.extra
        assert extra["dedup_batches"] > 0
        # binary_star has n_s=500 over n_r=25: real redundancy.
        assert extra["dedup_ratio"] > 1.0
        assert extra["dedup_references"] == (
            extra["dedup_ratio"] * extra["dedup_distinct"]
        )

    def test_nn_fit_reports_dedup_counters(self, db, binary_star):
        for algorithm in ("factorized", "streaming"):
            nn = fit_nn(
                db, binary_star.spec, hidden_sizes=(4,), epochs=2,
                algorithm=algorithm, seed=1,
            )
            assert nn.fit.extra["dedup_ratio"] > 1.0

    def test_materialized_fit_sees_no_plans(self, db, binary_star):
        """Batches read back from T never went through join assembly,
        so the counter stays empty — and honest."""
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1,
            algorithm="materialized", seed=1,
        )
        assert nn.fit.extra["dedup_batches"] == 0
        assert nn.fit.extra["dedup_ratio"] == 1.0
