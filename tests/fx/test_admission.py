"""TinyLFU admission on PartialCache / ShardedPartialCache."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.fx.sharding import ShardedPartialCache
from repro.serve.cache import PartialCache


def rows_for(keys):
    """Deterministic 1-wide rows so values are checkable."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys[:, None].astype(np.float64) * 10.0


class TestPolicySelection:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ModelError, match="admission"):
            PartialCache(4, admission="clock")

    def test_default_is_lru(self):
        assert PartialCache(4).admission == "lru"

    def test_sharded_cache_passes_the_policy_through(self):
        sharded = ShardedPartialCache(3, 9, admission="tinylfu")
        assert sharded.admission == "tinylfu"
        assert all(s.admission == "tinylfu" for s in sharded.shards)


class TestTinyLFUAdmission:
    def test_results_are_correct_even_when_rejected(self):
        cache = PartialCache(2, admission="tinylfu")
        out = cache.get_many(np.array([1, 2, 3, 4]), rows_for)
        np.testing.assert_array_equal(out, rows_for([1, 2, 3, 4]))

    def test_one_hit_wonders_do_not_evict_hot_entries(self):
        cache = PartialCache(2, admission="tinylfu")
        hot = np.array([1, 2])
        for _ in range(5):
            cache.get_many(hot, rows_for)
        # A parade of cold keys, each seen once: all should be refused
        # admission because the LRU victim (a hot key) out-ranks them.
        for cold in range(100, 120):
            cache.get_many(np.array([cold]), rows_for)
        assert 1 in cache
        assert 2 in cache
        assert cache.admission_rejections > 0
        assert cache.stats().admission_rejections > 0

    def test_lru_by_contrast_churns(self):
        cache = PartialCache(2)     # plain LRU
        for _ in range(5):
            cache.get_many(np.array([1, 2]), rows_for)
        for cold in range(100, 120):
            cache.get_many(np.array([cold]), rows_for)
        assert 1 not in cache and 2 not in cache
        assert cache.admission_rejections == 0

    def test_frequent_candidate_displaces_infrequent_resident(self):
        cache = PartialCache(2, admission="tinylfu")
        cache.get_many(np.array([1, 2]), rows_for)      # residents, once
        # Key 9's frequency grows with each (miss) access; once it
        # out-ranks the LRU victim it must be admitted.
        for _ in range(4):
            cache.get_many(np.array([9]), rows_for)
        assert 9 in cache

    def test_admission_fills_spare_capacity_unconditionally(self):
        cache = PartialCache(4, admission="tinylfu")
        cache.get_many(np.array([1, 2, 3]), rows_for)
        assert len(cache) == 3                # no eviction, no gate
        assert cache.admission_rejections == 0

    def test_clear_resets_rejections_and_sketch(self):
        cache = PartialCache(1, admission="tinylfu")
        for _ in range(3):
            cache.get_many(np.array([1]), rows_for)
        cache.get_many(np.array([2]), rows_for)
        assert cache.admission_rejections > 0
        cache.clear()
        assert cache.admission_rejections == 0
        # Post-clear, old frequencies are forgotten: 2 is admitted
        # once it earns frequency parity on an empty slate.
        cache.get_many(np.array([2]), rows_for)
        assert 2 in cache


class TestZipfWorkload:
    def test_tinylfu_beats_lru_hit_rate_on_skewed_traffic(self):
        rng = np.random.default_rng(7)
        universe = 400
        # Zipf-ish skew: a small hot set dominates, a long cold tail.
        raw = rng.zipf(1.3, size=6000) % universe
        lru = PartialCache(32)
        tiny = PartialCache(32, admission="tinylfu")
        for start in range(0, raw.size, 64):
            batch = np.unique(raw[start:start + 64])
            lru.get_many(batch, rows_for)
            tiny.get_many(batch, rows_for)
        assert tiny.stats().hit_rate > lru.stats().hit_rate

    def test_sharded_tinylfu_serves_correct_rows(self):
        sharded = ShardedPartialCache(4, 16, admission="tinylfu")
        rng = np.random.default_rng(11)
        for _ in range(30):
            keys = np.unique(rng.integers(0, 200, size=40))
            np.testing.assert_array_equal(
                sharded.get_many(keys, rows_for), rows_for(keys)
            )
        assert sharded.stats().admission_rejections > 0
