"""Tiered partial memory: ladder transitions, exactness, accounting.

The contract under test (see ``docs/tuning.md`` and
:mod:`repro.fx.tiers`):

* ``float32`` — GMM labels bit-exact, scores within
  ``FLOAT32_SCORE_RTOL`` of the float64 answer;
* ``int8`` — per-element error bounded by ``int8_error_bound(row)``;
* ``spill`` — bit-exact (the float64 row round-trips through a heap
  file);
* every tier's residency reconciles with the governor's accounting,
  under arbitrary interleavings of demote / promote / invalidate /
  pin.
"""

import warnings

import numpy as np
import pytest

from repro.errors import ModelError, StorageError
from repro.fx.store import PartialStore
from repro.fx.tiers import (
    FLOAT32_SCORE_RTOL,
    STORE_TIERS,
    TIER_FLOAT32,
    TIER_INT8,
    TIER_RESIDENT,
    TIER_SPILL,
    SpillSlab,
    compress,
    decompress,
    float_equivalents,
    int8_error_bound,
    validate_tiers,
)


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


WIDTH = 16


def rows_for(keys):
    """Deterministic ground-truth rows: key-dependent, varying within
    each row so int8 quantization is non-trivial."""
    keys = np.asarray(keys, dtype=np.float64)
    return keys[:, None] + np.linspace(0.0, 3.0, WIDTH)[None, :]


def tier_of(shard, key):
    """Which tier holds ``key`` in one PartialCache shard."""
    if key in shard._rows:
        return TIER_RESIDENT
    if key in shard._compressed:
        return shard._compressed[key][0]
    if key in shard._spilled:
        return TIER_SPILL
    return None


def reconcile(cache):
    """Assert every shard's tier accounting against a recount of its
    actual entries — the governor's budget truth."""
    for shard in cache.shards:
        resident = sum(row.size for row in shard._rows.values())
        compressed = sum(
            float_equivalents(tier, width)
            for tier, _, width in shard._compressed.values()
        )
        spilled = sum(w * 8 for w, _ in shard._spilled.values())
        assert shard._floats_resident == resident
        assert shard._compressed_floats == compressed
        assert shard._spilled_bytes == spilled
        assert shard.floats_resident == resident + compressed
        assert shard.bytes_resident == (resident + compressed) * 8
        # A key lives in exactly one tier.
        keys = (
            set(shard._rows) | set(shard._compressed)
            | set(shard._spilled)
        )
        assert len(keys) == (
            len(shard._rows) + len(shard._compressed)
            + len(shard._spilled)
        )
        stats = shard.stats()
        assert stats.compressed_floats_resident == compressed
        assert stats.compressed_bytes_resident == compressed * 8
        assert stats.spilled_bytes == spilled
        assert shard.demotions_total == sum(shard.demotions.values())
        assert shard.promotions_total == sum(shard.promotions.values())


class TestTierPrimitives:
    def test_validate_tiers_normalizes_to_ladder_order(self):
        assert validate_tiers(None) == ()
        assert validate_tiers(()) == ()
        assert validate_tiers("int8") == (TIER_INT8,)
        assert validate_tiers(["spill", "float32", "spill"]) == (
            TIER_FLOAT32, TIER_SPILL,
        )
        with pytest.raises(ModelError, match="unknown store tier"):
            validate_tiers(("zstd",))

    def test_float_equivalents_decrease_down_the_ladder_when_wide(self):
        charges = [
            float_equivalents(t, WIDTH)
            for t in (TIER_RESIDENT,) + STORE_TIERS
        ]
        assert charges == [16, 8, 4, 0]
        assert charges == sorted(charges, reverse=True)

    def test_int8_header_overhead_beats_float32_on_narrow_rows(self):
        # Width 4: float32 charges 2 floats, int8 charges (4+7)//8 + 2
        # = 3 — the gain guard must skip int8 for such rows.
        assert float_equivalents(TIER_FLOAT32, 4) == 2
        assert float_equivalents(TIER_INT8, 4) == 3
        with pytest.raises(ModelError, match="unknown store tier"):
            float_equivalents("zstd", 4)

    def test_float32_roundtrip_within_documented_rtol(self):
        row = rows_for(np.array([12345]))[0]
        back = decompress(TIER_FLOAT32, compress(TIER_FLOAT32, row))
        np.testing.assert_allclose(back, row, rtol=FLOAT32_SCORE_RTOL)
        assert back.dtype == np.float64

    def test_int8_roundtrip_within_error_bound(self):
        rng = np.random.default_rng(5)
        row = rng.normal(size=64) * 10.0
        back = decompress(TIER_INT8, compress(TIER_INT8, row))
        assert np.max(np.abs(back - row)) <= int8_error_bound(row) + 1e-12

    def test_int8_constant_row_is_exact(self):
        row = np.full(8, 3.25)
        codes, scale, lo = compress(TIER_INT8, row)
        assert scale == 0.0
        np.testing.assert_array_equal(
            decompress(TIER_INT8, (codes, scale, lo)), row
        )

    def test_only_compressed_tiers_have_an_encoding(self):
        row = np.ones(4)
        for tier in (TIER_RESIDENT, TIER_SPILL):
            with pytest.raises(ModelError, match="no compressed"):
                compress(tier, row)
            with pytest.raises(ModelError, match="no compressed"):
                decompress(tier, row)


class TestSpillSlab:
    def test_rows_roundtrip_bit_exact_per_width(self, tmp_path):
        slab = SpillSlab(tmp_path)
        narrow = np.arange(4, dtype=np.float64)
        wide = np.linspace(-1, 1, 16)
        p_narrow = slab.put(narrow)
        p_wide = slab.put(wide)
        np.testing.assert_array_equal(
            slab.read_rows(4, [p_narrow])[0], narrow
        )
        np.testing.assert_array_equal(
            slab.read_rows(16, [p_wide])[0], wide
        )
        slab.reset()

    def test_freed_positions_are_recycled(self, tmp_path):
        slab = SpillSlab(tmp_path)
        first = slab.put(np.ones(4))
        slab.free(4, first)
        again = slab.put(np.full(4, 2.0))
        assert again == first        # slot reuse, not file growth
        np.testing.assert_array_equal(
            slab.read_rows(4, [again])[0], np.full(4, 2.0)
        )
        slab.reset()

    def test_unknown_width_raises(self, tmp_path):
        slab = SpillSlab(tmp_path)
        with pytest.raises(StorageError, match="no spill heap"):
            slab.read_rows(7, [0])

    def test_reset_deletes_the_files(self, tmp_path):
        slab = SpillSlab(tmp_path)
        slab.put(np.ones(4))
        assert list(tmp_path.glob("spill-*.heap"))
        slab.reset()
        assert not list(tmp_path.glob("spill-*.heap"))


class TestTierLadder:
    def make(self, tiers, capacity_floats=WIDTH * 2):
        store = PartialStore(capacity_floats=capacity_floats, tiers=tiers)
        return store, store.acquire("fp")

    def test_spill_tier_requires_a_directory(self):
        from repro.fx.sharding import ShardedPartialCache

        with pytest.raises(ModelError, match="spill_dir"):
            ShardedPartialCache(1, tiers=(TIER_SPILL,))

    def test_eviction_demotes_instead_of_dropping(self):
        store, cache = self.make((TIER_FLOAT32, TIER_SPILL))
        cache.get_many(np.arange(3), rows_for)    # 48 floats > 32
        shard = cache.shards[0]
        # The coldest key walked down the ladder; every key is still
        # reachable without recompute.
        assert tier_of(shard, 0) in (TIER_FLOAT32, TIER_SPILL)
        assert all(k in cache for k in range(3))
        assert store.floats_resident <= 32
        assert shard.demotions.get(TIER_FLOAT32, 0) >= 1
        reconcile(cache)

    def test_demotion_cascades_to_spill_under_more_pressure(self):
        store, cache = self.make((TIER_FLOAT32, TIER_SPILL), WIDTH)
        cache.get_many(np.arange(4), rows_for)
        shard = cache.shards[0]
        assert shard.demotions.get(TIER_SPILL, 0) >= 1
        assert shard.stats().spilled_entries >= 1
        # Spilled rows charge disk, not the budget.
        assert store.floats_resident <= WIDTH + WIDTH // 2
        reconcile(cache)

    def test_promotion_returns_spilled_rows_bit_exact(self):
        store, cache = self.make((TIER_SPILL,), WIDTH)
        cache.get_many(np.arange(3), rows_for)
        shard = cache.shards[0]
        spilled = [k for k in range(3) if tier_of(shard, k) == TIER_SPILL]
        assert spilled
        calls = []

        def forbidden(keys):  # pragma: no cover - failure path
            calls.append(keys)
            return rows_for(keys)

        out = cache.get_many(np.array(spilled), forbidden)
        np.testing.assert_array_equal(out, rows_for(np.array(spilled)))
        assert not calls              # promoted, never recomputed
        assert shard.promotions.get(TIER_SPILL, 0) == len(spilled)
        reconcile(cache)

    def test_promotion_counts_as_hit_not_miss(self):
        store, cache = self.make((TIER_SPILL,), WIDTH)
        cache.get_many(np.arange(3), rows_for)
        before = cache.stats()
        shard = cache.shards[0]
        spilled = [k for k in range(3) if tier_of(shard, k) == TIER_SPILL]
        cache.get_many(np.array(spilled), rows_for)
        after = cache.stats()
        assert after.hits == before.hits + len(spilled)
        assert after.misses == before.misses

    def test_gain_guard_drops_rows_no_rung_can_shrink(self):
        # 1-float rows: float32 still charges 1 float — no gain, so
        # eviction falls off the ladder and counts a "drop".
        store = PartialStore(capacity_floats=2, tiers=(TIER_FLOAT32,))
        cache = store.acquire("fp")

        def narrow(keys):
            return np.asarray(keys, dtype=np.float64)[:, None]

        cache.get_many(np.arange(4), narrow)
        shard = cache.shards[0]
        assert shard.demotions.get("drop", 0) >= 1
        assert shard.demotions.get(TIER_FLOAT32, 0) == 0
        assert store.floats_resident <= 2
        reconcile(cache)

    def test_gain_guard_skips_int8_for_narrow_rows(self):
        # Width 4: int8 (3 floats) charges more than float32 (2), so
        # the ladder goes float32 -> spill, never float32 -> int8.
        store = PartialStore(
            capacity_floats=4, tiers=STORE_TIERS
        )
        cache = store.acquire("fp")

        def width4(keys):
            keys = np.asarray(keys, dtype=np.float64)
            return np.repeat(keys[:, None], 4, axis=1)

        cache.get_many(np.arange(4), width4)
        shard = cache.shards[0]
        assert shard.demotions.get(TIER_INT8, 0) == 0
        assert shard.demotions.get(TIER_SPILL, 0) >= 1
        reconcile(cache)

    def test_spilled_rows_are_terminal_until_invalidated(self):
        store, cache = self.make((TIER_SPILL,), WIDTH)
        cache.get_many(np.arange(4), rows_for)
        shard = cache.shards[0]
        spilled = [k for k in range(4) if tier_of(shard, k) == TIER_SPILL]
        assert spilled
        # More pressure cannot touch them (they charge nothing)...
        store.enforce_budget()
        assert all(tier_of(shard, k) == TIER_SPILL for k in spilled)
        # ...but invalidation still removes them, freeing their slots.
        dropped = cache.invalidate(np.array(spilled))
        assert dropped == len(spilled)
        assert all(k not in cache for k in spilled)
        assert shard._spilled_bytes == 0
        reconcile(cache)

    def test_compressed_rows_remain_eviction_candidates(self):
        # Once everything resident demoted to float32, continued
        # pressure walks the compressed rows further down the ladder.
        store, cache = self.make((TIER_FLOAT32, TIER_SPILL), WIDTH // 2)
        cache.get_many(np.arange(4), rows_for)
        shard = cache.shards[0]
        assert store.floats_resident <= WIDTH // 2 + WIDTH
        assert shard.demotions.get(TIER_SPILL, 0) >= 1
        reconcile(cache)

    def test_invalidation_reaches_every_tier(self):
        store, cache = self.make(STORE_TIERS, WIDTH)
        cache.get_many(np.arange(5), rows_for)
        shard = cache.shards[0]
        tiers_held = {tier_of(shard, k) for k in range(5)}
        assert len(tiers_held) > 1    # the point: keys span tiers
        assert cache.invalidate(np.arange(5)) == 5
        assert all(k not in cache for k in range(5))
        assert shard.floats_resident == 0
        assert shard._spilled_bytes == 0
        reconcile(cache)

    def test_clear_resets_every_tier_and_counter(self):
        store, cache = self.make(STORE_TIERS, WIDTH)
        cache.get_many(np.arange(5), rows_for)
        cache.clear()
        shard = cache.shards[0]
        assert shard.floats_resident == 0
        assert shard._spilled_bytes == 0
        assert shard.demotions_total == 0 and shard.promotions_total == 0
        assert len(cache) == 0
        reconcile(cache)

    def test_release_spill_drops_only_the_disk_tier(self):
        store, cache = self.make((TIER_FLOAT32, TIER_SPILL), WIDTH)
        cache.get_many(np.arange(4), rows_for)
        shard = cache.shards[0]
        resident_before = shard.floats_resident
        spill_root = store._spill_root
        assert spill_root is not None and spill_root.exists()
        store.release_spill()
        assert not spill_root.exists()
        assert shard._spilled_bytes == 0 and not shard._spilled
        # Memory tiers untouched; spilled keys just recompute now.
        assert shard.floats_resident == resident_before
        store.release_spill()         # idempotent

    def test_store_close_removes_the_spill_directory(self):
        store, cache = self.make((TIER_SPILL,), WIDTH)
        cache.get_many(np.arange(4), rows_for)
        spill_root = store._spill_root
        assert spill_root is not None and spill_root.exists()
        store.close()
        assert not spill_root.exists()


class TestPinSafety:
    def test_pinned_rows_are_never_demoted(self):
        store = PartialStore(
            capacity_floats=WIDTH, tiers=(TIER_FLOAT32, TIER_SPILL)
        )
        cache = store.acquire("fp")
        cache.get_many(np.array([0]), rows_for)
        cache.pin(np.array([0]))
        try:
            cache.get_many(np.array([1, 2]), rows_for)
            shard = cache.shards[0]
            # The pinned row held the resident tier; pressure demoted
            # the unpinned newcomers instead.
            assert tier_of(shard, 0) == TIER_RESIDENT
        finally:
            cache.unpin(np.array([0]))
        # Unpinned, the next round of pressure may take it.
        cache.get_many(np.array([3]), rows_for)
        assert tier_of(cache.shards[0], 0) != TIER_RESIDENT
        reconcile(cache)

    def test_pin_refcounts_require_matching_unpins(self):
        store = PartialStore(
            capacity_floats=WIDTH, tiers=(TIER_SPILL,)
        )
        cache = store.acquire("fp")
        cache.get_many(np.array([7]), rows_for)
        cache.pin(np.array([7]))
        cache.pin(np.array([7]))
        cache.unpin(np.array([7]))    # one ref still held
        cache.get_many(np.arange(1, 4), rows_for)
        assert tier_of(cache.shards[0], 7) == TIER_RESIDENT
        cache.unpin(np.array([7]))
        cache.get_many(np.array([4]), rows_for)    # fresh pressure
        assert tier_of(cache.shards[0], 7) != TIER_RESIDENT


LADDERS = [
    (TIER_FLOAT32,),
    (TIER_SPILL,),
    (TIER_FLOAT32, TIER_SPILL),
    STORE_TIERS,
]


class TestRandomizedTierTransitions:
    """Property suite: random demote/promote/invalidate/pin schedules
    across every ladder must keep values within the tier contract and
    the per-tier accounting reconciled."""

    @pytest.mark.parametrize(
        "tiers", LADDERS, ids=["+".join(t) for t in LADDERS]
    )
    def test_random_schedules_hold_the_contract(self, tiers):
        rng = np.random.default_rng(hash(tiers) % (2**32))
        store = PartialStore(
            num_shards=2,
            capacity_floats=WIDTH * 3,
            tiers=tiers,
            hysteresis=0.9,
        )
        cache = store.acquire("fp")
        universe = np.arange(24)
        pinned: list[int] = []
        # int8 in the ladder loosens the value bound to its documented
        # quantization error; without it float32's rtol governs; pure
        # spill is bit-exact.
        if TIER_INT8 in tiers:
            atol = max(
                int8_error_bound(rows_for(np.array([k]))[0])
                for k in universe
            )
            rtol = FLOAT32_SCORE_RTOL
        elif TIER_FLOAT32 in tiers:
            atol, rtol = 0.0, FLOAT32_SCORE_RTOL
        else:
            atol, rtol = 0.0, 0.0
        for step in range(120):
            op = rng.choice(["get", "invalidate", "pin", "unpin", "sweep"])
            if op == "get":
                keys = rng.choice(universe, size=rng.integers(1, 8),
                                  replace=False)
                keys = np.sort(keys)
                out = cache.get_many(keys, rows_for)
                truth = rows_for(keys)
                if rtol or atol:
                    np.testing.assert_allclose(
                        out, truth, rtol=rtol, atol=atol
                    )
                else:
                    np.testing.assert_array_equal(out, truth)
            elif op == "invalidate":
                keys = rng.choice(universe, size=rng.integers(1, 6),
                                  replace=False)
                cache.invalidate(keys)
                for key in keys:
                    assert int(key) not in cache
            elif op == "pin" and len(pinned) < 4:
                key = int(rng.choice(universe))
                cache.pin(np.array([key]))
                pinned.append(key)
            elif op == "unpin" and pinned:
                key = pinned.pop(rng.integers(len(pinned)))
                cache.unpin(np.array([key]))
            elif op == "sweep":
                store.enforce_budget()
            reconcile(cache)
        for key in pinned:
            cache.unpin(np.array([key]))
        store.enforce_budget()
        assert store.floats_resident <= WIDTH * 3
        reconcile(cache)
        store.close()
        assert store._spill_root is None

    @pytest.mark.parametrize(
        "tiers", LADDERS, ids=["+".join(t) for t in LADDERS]
    )
    def test_demotion_promotion_cycles_never_lose_keys(self, tiers):
        store = PartialStore(capacity_floats=WIDTH * 2, tiers=tiers)
        cache = store.acquire("fp")
        rng = np.random.default_rng(17)
        seen = set()
        for _ in range(30):
            keys = np.sort(
                rng.choice(12, size=rng.integers(1, 6), replace=False)
            )
            cache.get_many(keys, rows_for)
            seen.update(int(k) for k in keys)
            # Unless dropped off the ladder's end, every key ever
            # inserted is still reachable in some tier.
            shard_dropped = sum(
                s.demotions.get("drop", 0) for s in cache.shards
            )
            held = sum(1 for k in seen if k in cache)
            assert held >= len(seen) - shard_dropped
            reconcile(cache)
        store.close()


class TestGovernorHysteresis:
    """A steady-state workload 5% over budget must not invoke the
    governor every batch once hysteresis trims to a low watermark."""

    @staticmethod
    def drive(hysteresis, batches=20):
        store = PartialStore(
            capacity_floats=100, tiers=(), hysteresis=hysteresis
        )
        cache = store.acquire("fp")

        def narrow(keys):
            return np.asarray(keys, dtype=np.float64)[:, None]

        cache.get_many(np.arange(100), narrow)    # fill to budget
        for i in range(batches):
            fresh = np.arange(100 + i * 5, 105 + i * 5)
            cache.get_many(fresh, narrow)         # +5 rows, ~5% over
        sweeps = store.governor_sweeps
        store.close()
        return sweeps

    def test_hysteresis_bounds_sweep_frequency(self):
        batches = 20
        every_batch = self.drive(1.0, batches)
        damped = self.drive(0.9, batches)
        # Without a watermark each 5%-over batch trips the governor.
        assert every_batch == batches
        # Trimming to 90% buys ~2 quiet batches per trip: at most one
        # sweep per two batches, and at least one sweep overall.
        assert 1 <= damped <= batches // 2
        assert damped < every_batch

    def test_sweeps_are_counted_not_rows(self):
        store = PartialStore(capacity_floats=2, hysteresis=1.0)
        cache = store.acquire("fp")

        def narrow(keys):
            return np.asarray(keys, dtype=np.float64)[:, None]

        cache.get_many(np.arange(6), narrow)
        # One get_many = one governor trip, however many rows it swept.
        assert store.governor_sweeps == 1
        assert store.stats().governor_sweeps == 1
        assert store.stats().cross_evictions == 4

    def test_runtime_exports_the_sweep_counter(self, db, binary_star):
        from repro.core.api import fit_nn, serve_runtime

        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        fact = binary_star.spec.resolve(db).fact
        rows = fact.scan()
        features = fact.project_features(rows)
        fk = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
        with serve_runtime(
            db, num_workers=1, memory_budget=512,
            store_tiers=("float32", "spill"), telemetry=True,
            max_wait_ms=0.0,
        ) as rt:
            rt.register_nn("m", nn, binary_star.spec,
                           strategy="factorized")
            for start in range(0, 200, 50):
                rt.predict(
                    "m", features[start:start + 50], fk[start:start + 50]
                )
            snapshot = rt.telemetry.registry.snapshot()
            sweeps = snapshot.value("repro_store_governor_sweeps_total")
            batches = rt.runtime_stats().batches
            assert sweeps == rt.store.governor_sweeps
            # At most one sweep per batch, never one per row.
            assert 0 < sweeps <= batches
            assert snapshot.value(
                "repro_store_tier_bytes_resident", tier="spill"
            ) >= 0
