"""FrequencySketch: count-min estimates with aging."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.fx.sketch import FrequencySketch


class TestBasics:
    def test_unseen_keys_estimate_zero(self):
        sketch = FrequencySketch(256)
        assert sketch.estimate(42) == 0

    def test_counts_accumulate_per_key(self):
        sketch = FrequencySketch(256)
        sketch.record(np.array([7] * 10 + [9] * 2))
        assert sketch.estimate(7) >= 10     # count-min over-estimates
        assert sketch.estimate(7) > sketch.estimate(9)

    def test_duplicates_in_one_record_call_count(self):
        sketch = FrequencySketch(256)
        sketch.record(np.array([5, 5, 5]))
        assert sketch.estimate(5) >= 3

    def test_estimate_many_matches_scalar_estimates(self):
        sketch = FrequencySketch(256)
        rng = np.random.default_rng(3)
        sketch.record(rng.integers(0, 50, size=500))
        keys = np.arange(50)
        many = sketch.estimate_many(keys)
        assert many.tolist() == [sketch.estimate(int(k)) for k in keys]

    def test_empty_record_is_a_noop(self):
        sketch = FrequencySketch(64)
        sketch.record(np.zeros(0, dtype=np.int64))
        assert sketch.estimate(0) == 0

    def test_clear_resets(self):
        sketch = FrequencySketch(64)
        sketch.record(np.array([1, 1, 1]))
        sketch.clear()
        assert sketch.estimate(1) == 0


class TestAging:
    def test_counters_halve_after_sample_window(self):
        sketch = FrequencySketch(64, sample_factor=1)   # window = width
        sketch.record(np.array([3] * 60))
        before = sketch.estimate(3)
        # Push past the sample window with other keys: aging halves.
        sketch.record(np.arange(100, 200))
        assert sketch.estimate(3) <= before // 2 + 1

    def test_width_rounded_to_power_of_two_with_floor(self):
        assert FrequencySketch(100).width == 128
        assert FrequencySketch(1).width == 64


class TestValidation:
    def test_rejects_bad_width(self):
        with pytest.raises(ModelError, match="width"):
            FrequencySketch(0)

    def test_rejects_bad_depth(self):
        with pytest.raises(ModelError, match="depth"):
            FrequencySketch(64, depth=9)
