"""Cross-model partial sharing: bit-exact predictions, smaller footprint."""

import warnings

import numpy as np
import pytest

from repro.core.api import fit_gmm, fit_nn, serve, serve_runtime
from repro.fx.store import PartialStore
from repro.serve.service import ModelService


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


def a_request(db, spec, n=200):
    fact = spec.resolve(db).fact
    rows = fact.scan()[:n]
    fk = rows[:, fact.schema.fk_position("R1")].astype(np.int64)
    return fact.project_features(rows), fk


class TestServiceSharing:
    def test_same_model_twice_is_bit_exact_and_cheaper(self, db,
                                                       binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        features, fk = a_request(db, binary_star.spec)

        # Standalone baseline: a private store per registration.
        standalone = ModelService(db, store=PartialStore(shared=False))
        standalone.register_nn("a", nn, binary_star.spec)
        standalone.register_nn("b", nn, binary_star.spec)
        base_a = standalone.predict("a", features, fk)
        base_b = standalone.predict("b", features, fk)
        standalone_bytes = standalone.store.bytes_resident
        standalone.close()

        shared = serve(db)
        shared.register_nn("a", nn, binary_star.spec)
        shared.register_nn("b", nn, binary_star.spec)
        out_a = shared.predict("a", features, fk)
        out_b = shared.predict("b", features, fk)

        # Bit-exact against the unshared deployment, and across names.
        np.testing.assert_array_equal(out_a, base_a)
        np.testing.assert_array_equal(out_b, base_b)
        np.testing.assert_array_equal(out_a, out_b)
        # One resident copy instead of two.
        assert shared.store.bytes_resident < standalone_bytes
        assert shared.store.bytes_resident == standalone_bytes // 2
        assert shared.store_stats().shared_attachments == 1
        shared.close()

    def test_second_sharer_is_warm_from_the_start(self, db, binary_star):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, seed=1
        )
        service = serve(db)
        service.register_gmm("a", gmm, binary_star.spec)
        service.register_gmm("b", gmm, binary_star.spec)
        features, fk = a_request(db, binary_star.spec)
        service.predict("a", features, fk)          # fills the cache
        service.predict("b", features, fk)          # rides it
        (stats,) = service.cache_stats("b")         # shared counters
        assert stats.hits > 0
        service.close()

    def test_different_models_do_not_share(self, db, binary_star):
        nn1 = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        nn2 = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=2
        )
        service = serve(db)
        service.register_nn("one", nn1, binary_star.spec)
        service.register_nn("two", nn2, binary_star.spec)
        assert len(service.store) == 2
        assert service.store_stats().shared_attachments == 0
        features, fk = a_request(db, binary_star.spec)
        out1 = service.predict("one", features, fk)
        out2 = service.predict("two", features, fk)
        assert not np.allclose(out1, out2)
        service.close()

    def test_unregister_releases_but_keeps_the_sharers_cache(
        self, db, binary_star
    ):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        service = serve(db)
        service.register_nn("a", nn, binary_star.spec)
        service.register_nn("b", nn, binary_star.spec)
        features, fk = a_request(db, binary_star.spec)
        expected = service.predict("a", features, fk)
        service.unregister("a")
        assert len(service.store) == 1      # "b" still holds it
        np.testing.assert_array_equal(
            service.predict("b", features, fk), expected
        )
        service.unregister("b")
        assert len(service.store) == 0
        service.close()

    def test_invalidation_with_sharing_stays_exact(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        service = serve(db)
        service.register_nn("a", nn, binary_star.spec)
        service.register_nn("b", nn, binary_star.spec)
        features, fk = a_request(db, binary_star.spec)
        before = service.predict("a", features, fk)

        relation = db["R1"]
        victim = int(fk[0])
        position = relation.positions_of_keys(np.array([victim]))
        new_row = relation.scan()[position[0]].copy()
        new_row[1:] += 2.0
        db.update_rows("R1", position, new_row[None, :])

        after_a = service.predict("a", features, fk)
        after_b = service.predict("b", features, fk)
        np.testing.assert_array_equal(after_a, after_b)
        assert not np.allclose(
            before[fk == victim], after_a[fk == victim]
        )
        service.close()


class TestStoreSharedAcrossServices:
    def test_different_databases_never_share_partials(self, tmp_path):
        # Same seeds → identical schemas, relation names and fitted
        # weights; only the stored dimension rows' home differs.  A
        # store shared across the two services must still keep their
        # partials apart (the fingerprint pins the heap path).
        from repro.data.synthetic import StarSchemaConfig, generate_star
        from repro.storage.catalog import Database

        store = PartialStore()
        services = []
        for i in (1, 2):
            db = Database(tmp_path / f"db{i}")
            star = generate_star(db, StarSchemaConfig.binary(
                n_s=300, n_r=10, d_s=3, d_r=4, with_target=True, seed=3,
            ))
            nn = fit_nn(db, star.spec, hidden_sizes=(4,), epochs=1,
                        seed=1)
            service = ModelService(db, store=store)
            service.register_nn("m", nn, star.spec)
            services.append((db, service))
        assert len(store) == 2
        assert store.stats().shared_attachments == 0
        for db, service in services:
            service.close()
            db.close(delete=True)

    def test_close_releases_the_stores_pins(self, db, binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(4,), epochs=1, seed=1
        )
        store = PartialStore()
        service = ModelService(db, store=store)
        service.register_nn("m", nn, binary_star.spec)
        features, fk = a_request(db, binary_star.spec)
        expected = service.predict("m", features, fk)
        assert len(store) == 1
        service.close()
        service.close()                     # idempotent
        assert len(store) == 0              # no pinned slabs left
        # The service stays readable after close (existing contract).
        np.testing.assert_array_equal(
            service.predict("m", features, fk), expected
        )


class TestRuntimeSharing:
    def test_runtime_sharing_is_bit_exact_and_cheaper(self, db,
                                                      binary_star):
        nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        features, fk = a_request(db, binary_star.spec)
        with serve_runtime(
            db, num_workers=2, share_partials=False
        ) as solo:
            solo.register_nn("a", nn, binary_star.spec,
                             strategy="factorized")
            solo.register_nn("b", nn, binary_star.spec,
                             strategy="factorized")
            base_a = solo.predict("a", features, fk)
            solo.predict("b", features, fk)
            solo_bytes = solo.store.bytes_resident
            assert len(solo.store) == 2
        with serve_runtime(db, num_workers=2) as rt:
            rt.register_nn("a", nn, binary_star.spec,
                           strategy="factorized")
            rt.register_nn("b", nn, binary_star.spec,
                           strategy="factorized")
            out_a = rt.predict("a", features, fk)
            out_b = rt.predict("b", features, fk)
            np.testing.assert_array_equal(out_a, base_a)
            np.testing.assert_array_equal(out_a, out_b)
            snapshot = rt.runtime_stats()
            assert snapshot.store.caches == 1
            assert snapshot.store.shared_attachments == 1
            assert rt.store.bytes_resident < solo_bytes
