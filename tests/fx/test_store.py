"""PartialStore: fingerprint-keyed cache sharing and lifecycle."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.fx.store import PartialStore


def rows_for(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return keys[:, None].astype(np.float64)


class TestAcquireRelease:
    def test_same_fingerprint_shares_one_cache(self):
        store = PartialStore()
        a = store.acquire("fp-1")
        b = store.acquire("fp-1")
        assert a is b
        assert len(store) == 1
        stats = store.stats()
        assert stats.attachments == 2
        assert stats.shared_attachments == 1

    def test_different_fingerprints_never_collide(self):
        store = PartialStore()
        a = store.acquire("fp-1")
        b = store.acquire("fp-2")
        assert a is not b
        assert len(store) == 2
        assert store.stats().shared_attachments == 0

    def test_cache_survives_until_last_release(self):
        store = PartialStore()
        a = store.acquire("fp-1")
        store.acquire("fp-1")
        a.get_many(np.array([1, 2]), rows_for)
        store.release(a)
        assert len(store) == 1          # one holder left
        assert store.bytes_resident > 0
        store.release(a)
        assert len(store) == 0
        assert store.bytes_resident == 0

    def test_release_of_foreign_cache_rejected(self):
        store = PartialStore()
        other = PartialStore().acquire("fp-1")
        with pytest.raises(ModelError, match="store"):
            store.release(other)

    def test_double_full_release_rejected(self):
        store = PartialStore()
        cache = store.acquire("fp-1")
        store.release(cache)
        with pytest.raises(ModelError):
            store.release(cache)

    def test_reacquire_after_drop_starts_cold(self):
        store = PartialStore()
        cache = store.acquire("fp-1")
        cache.get_many(np.array([1]), rows_for)
        store.release(cache)
        fresh = store.acquire("fp-1")
        assert len(fresh) == 0


class TestSharingKnob:
    def test_unshared_store_gives_private_caches(self):
        store = PartialStore(shared=False)
        a = store.acquire("fp-1")
        b = store.acquire("fp-1")
        assert a is not b
        assert len(store) == 2
        assert store.stats().shared_attachments == 0
        store.release(a)
        assert len(store) == 1          # b's cache is untouched


class TestConfiguration:
    def test_conflicting_capacity_raises_instead_of_silent_ignore(self):
        store = PartialStore()
        store.acquire("fp-1", capacity=2)
        with pytest.raises(ModelError, match="capacity=2"):
            store.acquire("fp-1", capacity=999)
        with pytest.raises(ModelError, match="capacity_floats"):
            store.acquire("fp-1", capacity=2, capacity_floats=64)

    def test_matching_or_absent_bounds_attach(self):
        store = PartialStore()
        a = store.acquire("fp-1", capacity=2)
        assert store.acquire("fp-1") is a               # no opinion
        assert store.acquire("fp-1", capacity=2) is a   # same bound
        a.get_many(np.array([1, 2, 3]), rows_for)
        assert len(a) == 2              # the created bound held

    def test_failed_reconcile_leaves_refcounts_untouched(self):
        store = PartialStore()
        a = store.acquire("fp-1", capacity=2)
        with pytest.raises(ModelError):
            store.acquire("fp-1", capacity=3)
        store.release(a)
        assert len(store) == 0          # sole holder; no leaked ref

    def test_num_shards_and_admission_apply_to_created_caches(self):
        store = PartialStore(num_shards=3, admission="tinylfu")
        cache = store.acquire("fp-1")
        assert cache.num_shards == 3
        assert cache.admission == "tinylfu"

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ModelError, match="num_shards"):
            PartialStore(num_shards=0)
        with pytest.raises(ModelError, match="admission"):
            PartialStore(admission="clock")


class TestStats:
    def test_aggregates_across_caches(self):
        store = PartialStore()
        a = store.acquire("fp-1")
        b = store.acquire("fp-2")
        a.get_many(np.array([1, 2]), rows_for)
        b.get_many(np.array([1]), rows_for)
        stats = store.stats()
        assert stats.caches == 2
        assert stats.cache.misses == 3
        assert stats.bytes_resident == 3 * 8

    def test_clear_drops_rows_but_keeps_handles(self):
        store = PartialStore()
        cache = store.acquire("fp-1")
        cache.get_many(np.array([1, 2]), rows_for)
        store.clear()
        assert store.bytes_resident == 0
        assert len(store) == 1
        cache.get_many(np.array([1]), rows_for)     # handle still live
