"""The unified CostModel interface and its adapters."""

import pytest

from repro.core.strategies import FACTORIZED, MATERIALIZED, STREAMING
from repro.errors import ModelError
from repro.fx.costs import (
    CostModel,
    GMMServingCost,
    GMMTrainingCost,
    NNServingCost,
    NNTrainingCost,
    TrainingPageProfile,
    recommend_training_strategy,
    serving_cost_model,
    training_cost_model,
)
from repro.gmm.cost_model import (
    dense_outer_cost,
    factorized_outer_cost,
    m_gmm_io_pages,
    s_gmm_io_pages,
)
from repro.nn.cost_model import (
    layer1_forward_mults_dense,
    layer1_forward_mults_factorized,
    m_nn_io_pages,
    s_nn_io_pages,
)
from repro.serve.cost_model import (
    gmm_serving_mults_dense,
    gmm_serving_mults_factorized,
    nn_serving_mults_dense,
    nn_serving_mults_factorized,
)


class TestProtocol:
    @pytest.mark.parametrize("factory", [serving_cost_model,
                                         training_cost_model])
    @pytest.mark.parametrize("kind", ["gmm", "nn"])
    def test_adapters_satisfy_the_protocol(self, factory, kind):
        model = factory(kind, d_s=3, dim_widths=(4,), width_param=2)
        assert isinstance(model, CostModel)
        assert model.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError, match="kind"):
            serving_cost_model("svm", d_s=3, dim_widths=(4,),
                               width_param=2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(d_s=0, dim_widths=(4,), width_param=2),
            dict(d_s=3, dim_widths=(), width_param=2),
            dict(d_s=3, dim_widths=(4, 0), width_param=2),
            dict(d_s=3, dim_widths=(4,), width_param=0),
        ],
    )
    def test_invalid_layouts_rejected(self, kwargs):
        with pytest.raises(ModelError):
            NNServingCost(**kwargs)

    def test_distinct_arity_checked(self):
        model = serving_cost_model(
            "nn", d_s=3, dim_widths=(4, 5), width_param=2
        )
        with pytest.raises(ModelError, match="distinct"):
            model.factorized_mults(10, (3,))


class TestServingAdaptersReduceToPublishedCounts:
    """Binary joins must match repro.serve.cost_model exactly."""

    @pytest.mark.parametrize("n,m", [(100, 5), (64, 64), (1, 1)])
    def test_nn_binary(self, n, m):
        model = NNServingCost(5, (15,), 32)
        assert model.dense_mults(n) == nn_serving_mults_dense(n, 5, 15, 32)
        assert model.factorized_mults(n, (m,)) == (
            nn_serving_mults_factorized(n, m, 5, 15, 32)
        )
        assert model.factorized_mults(n, (m,), (0.5,)) == (
            nn_serving_mults_factorized(n, m, 5, 15, 32, hit_rate=0.5)
        )

    @pytest.mark.parametrize("n,m", [(100, 5), (64, 64)])
    def test_gmm_binary(self, n, m):
        model = GMMServingCost(5, (15,), 3)
        assert model.dense_mults(n) == gmm_serving_mults_dense(n, 5, 15, 3)
        assert model.factorized_mults(n, (m,)) == (
            gmm_serving_mults_factorized(n, m, 5, 15, 3)
        )

    def test_multiway_warm_cache_removes_dimension_work(self):
        model = NNServingCost(5, (15, 7), 32)
        warm = model.factorized_mults(100, (10, 10), (1.0, 1.0))
        assert warm == 100 * 32 * 5
        assert warm < model.factorized_mults(100, (10, 10))

    def test_hit_rates_clamped(self):
        model = NNServingCost(5, (15,), 32)
        assert model.factorized_mults(64, (64,), (7.0,)) == 64 * 32 * 5


class TestTrainingAdaptersReduceToPublishedCounts:
    def test_nn_binary(self):
        model = NNTrainingCost(5, (15,), 32)
        assert model.dense_mults(100) == (
            layer1_forward_mults_dense(100, 20, 32)
        )
        assert model.factorized_mults(100, (10,)) == (
            layer1_forward_mults_factorized(100, 10, 5, 15, 32)
        )

    def test_gmm_binary(self):
        model = GMMTrainingCost(5, (15,), 3)
        assert model.dense_mults(100) == (
            3 * dense_outer_cost(100, 5, 15).multiplications
        )
        assert model.factorized_mults(100, (10,)) == (
            3 * factorized_outer_cost(100, 10, 5, 15).multiplications
        )

    @pytest.mark.parametrize("cls", [NNTrainingCost, GMMTrainingCost])
    def test_multiway_is_dense_minus_per_dimension_savings(self, cls):
        # Additive structure: with every dimension at full cardinality
        # (m_i = n) the factorized count equals the dense count.
        model = cls(3, (4, 6), 2)
        assert model.factorized_mults(50, (50, 50)) == (
            model.dense_mults(50)
        )
        assert model.factorized_mults(50, (5, 5)) < model.dense_mults(50)


class TestDecisions:
    def test_redundant_workload_chooses_factorized(self):
        model = serving_cost_model(
            "nn", d_s=5, dim_widths=(15,), width_param=32
        )
        assert model.choose(128, (4,)) == FACTORIZED

    def test_tie_goes_to_materialized(self):
        # With m == n and a cold cache the NN counts tie exactly.
        model = serving_cost_model(
            "nn", d_s=5, dim_widths=(15,), width_param=32
        )
        assert model.choose(64, (64,)) == MATERIALIZED
        assert model.choose(64, (64,), (0.9,)) == FACTORIZED

    def test_saving_rate_in_unit_interval_when_winning(self):
        model = serving_cost_model(
            "gmm", d_s=5, dim_widths=(15,), width_param=3
        )
        assert 0 < model.saving_rate(128, (4,)) < 1

    def test_recommendation_tracks_tuple_ratio(self):
        assert recommend_training_strategy(
            "gmm", rows=10_000, distinct=(100,), d_s=5,
            dim_widths=(15,), width_param=3,
        ) == FACTORIZED
        # A "dimension" as large as the fact table has no redundancy.
        assert recommend_training_strategy(
            "gmm", rows=100, distinct=(100,), d_s=5,
            dim_widths=(15,), width_param=3,
        ) == MATERIALIZED


class TestTrainingIOReducesToPublishedPages:
    """Binary page counts reproduce the Section V-A formulas (and the
    NN twin) exactly; multi-way uses the additive pass generalization."""

    PROFILE = TrainingPageProfile(
        fact_pages=40, dim_pages=(12,), joined_pages=90, block_pages=4
    )

    def test_gmm_binary(self):
        model = training_cost_model(
            "gmm", d_s=5, dim_widths=(15,), width_param=3
        )
        for iterations in (1, 4, 10):
            assert model.materialized_io_pages(
                self.PROFILE, iterations
            ) == m_gmm_io_pages(12, 40, 90, 4, iterations)
            assert model.streaming_io_pages(
                self.PROFILE, iterations
            ) == s_gmm_io_pages(12, 40, 4, iterations)

    def test_nn_binary(self):
        model = training_cost_model(
            "nn", d_s=5, dim_widths=(15,), width_param=32
        )
        for epochs in (1, 4, 10):
            assert model.materialized_io_pages(
                self.PROFILE, epochs
            ) == m_nn_io_pages(12, 40, 90, 4, epochs)
            assert model.streaming_io_pages(
                self.PROFILE, epochs
            ) == s_nn_io_pages(12, 40, 4, epochs)

    def test_multiway_pass_is_additive(self):
        profile = TrainingPageProfile(
            fact_pages=40, dim_pages=(6, 3), joined_pages=90,
            block_pages=4,
        )
        assert profile.join_pass_pages() == 40 + 6 + 3
        model = training_cost_model(
            "gmm", d_s=5, dim_widths=(4, 2), width_param=3
        )
        assert model.streaming_io_pages(profile, 2) == 3 * 2 * 49
        assert model.materialized_io_pages(profile, 2) == (
            49 + 90 + 3 * 2 * 90
        )

    def test_profile_arity_checked(self):
        model = training_cost_model(
            "gmm", d_s=5, dim_widths=(4, 2), width_param=3
        )
        with pytest.raises(ModelError, match="dimensions"):
            model.materialized_io_pages(self.PROFILE, 1)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ModelError):
            TrainingPageProfile(
                fact_pages=0, dim_pages=(1,), joined_pages=1
            )


class TestIOAwareRecommendation:
    LAYOUT = dict(d_s=5, dim_widths=(15,), width_param=3)

    def test_factorized_wins_regardless_of_pages(self):
        # Compute decides first: redundancy means factorized, which
        # already runs the cheapest (streaming) page schedule.
        assert recommend_training_strategy(
            "gmm", rows=10_000, distinct=(100,), **self.LAYOUT,
            pages=TrainingPageProfile(
                fact_pages=40, dim_pages=(12,), joined_pages=90
            ),
            iterations=1,
        ) == FACTORIZED

    def test_short_run_with_wide_join_streams(self):
        # One EM iteration: materializing T costs pass + 4·|T| against
        # streaming's 3 passes — T is wide, streaming wins.
        assert recommend_training_strategy(
            "gmm", rows=100, distinct=(100,), **self.LAYOUT,
            pages=TrainingPageProfile(
                fact_pages=10, dim_pages=(8,), joined_pages=40,
                block_pages=64,
            ),
            iterations=1,
        ) == STREAMING

    def test_long_run_amortizes_materialization(self):
        assert recommend_training_strategy(
            "gmm", rows=100, distinct=(100,), **self.LAYOUT,
            pages=TrainingPageProfile(
                fact_pages=10, dim_pages=(8,), joined_pages=12,
                block_pages=64,
            ),
            iterations=50,
        ) == MATERIALIZED

    def test_memory_budget_clamps_to_streaming(self):
        # Same long run, but T does not fit the budget.
        assert recommend_training_strategy(
            "gmm", rows=100, distinct=(100,), **self.LAYOUT,
            pages=TrainingPageProfile(
                fact_pages=10, dim_pages=(8,), joined_pages=12,
                block_pages=64,
            ),
            iterations=50,
            memory_budget_pages=10,
        ) == STREAMING

    def test_without_pages_decision_is_compute_only(self):
        assert recommend_training_strategy(
            "gmm", rows=100, distinct=(100,), **self.LAYOUT,
        ) == MATERIALIZED
