"""Shared-memory arena, slab allocator and the deficit-bounded trim
planner behind the process execution backend."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.fx.shm import (
    HDR_FLOATS_RESIDENT,
    HEADER_FIELDS,
    SEGMENT_PREFIX,
    SharedPartialStore,
    ShmArena,
    SlabAllocator,
    header_nbytes,
    header_view,
    plan_trims,
    segment_name,
)


def rows_for(width):
    def loader(keys):
        keys = np.asarray(keys, dtype=np.int64)
        return np.repeat(
            keys[:, None].astype(np.float64), width, axis=1
        )
    return loader


class TestArena:
    def test_segment_names_carry_prefix_and_pid(self):
        import os

        name = segment_name("part0")
        assert name.startswith(f"{SEGMENT_PREFIX}-{os.getpid()}-part0-")

    def test_create_attach_and_close(self):
        owner = ShmArena()
        seg = owner.create("t", 4096)
        assert seg.owner and seg.size >= 4096
        other = ShmArena()
        attached = other.attach(seg.name)
        assert not attached.owner
        # Writes through one mapping are visible through the other.
        np.frombuffer(seg.buf, dtype=np.int64, count=1)[0] = 42
        assert np.frombuffer(attached.buf, dtype=np.int64, count=1)[0] == 42
        other.close()
        owner.close()
        owner.close()  # idempotent

    def test_owner_close_unlinks_the_segment(self):
        from multiprocessing import shared_memory

        arena = ShmArena()
        seg = arena.create("t", 1024)
        name = seg.name
        arena.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_release_drops_a_single_segment_early(self):
        arena = ShmArena()
        keep = arena.create("keep", 1024)
        drop = arena.create("drop", 1024)
        arena.release(drop.name)
        assert arena.names == [keep.name]
        arena.close()

    def test_close_in_a_forked_child_is_a_no_op(self):
        # Fork children inherit the arena and its atexit hook; the pid
        # guard must keep them from unlinking the parent's segments.
        arena = ShmArena()
        seg = arena.create("t", 1024)
        arena._pid += 1            # simulate being a different process
        arena.close()
        assert arena.names == [seg.name]   # nothing was dropped
        arena._pid -= 1
        arena.close()

    def test_rejects_empty_segments_and_closed_arena(self):
        arena = ShmArena()
        with pytest.raises(ModelError, match="positive"):
            arena.create("t", 0)
        arena.close()
        with pytest.raises(ModelError, match="closed"):
            arena.create("t", 1024)


class TestSlabAllocator:
    def test_bump_allocation_and_view_aliasing(self):
        arena = ShmArena()
        seg = arena.create("slab", 1024)
        alloc = SlabAllocator(seg.buf)
        offset, view = alloc.allocate(4)
        assert offset == 0 and view.shape == (4,)
        view[:] = 7.0
        # The slot is a window into the shared buffer, not a copy.
        raw = np.frombuffer(seg.buf, dtype=np.float64, count=4)
        np.testing.assert_array_equal(raw, [7.0] * 4)
        assert alloc.bytes_reserved == 32
        view = raw = None          # release exports before detaching
        arena.close()

    def test_freed_slots_are_recycled_per_width(self):
        arena = ShmArena()
        seg = arena.create("slab", 1024)
        alloc = SlabAllocator(seg.buf)
        offset, first = alloc.allocate(8)
        _, second = alloc.allocate(8)
        alloc.free(offset, 8)
        again, third = alloc.allocate(8)
        assert again == offset             # recycled, not bumped
        assert alloc.bytes_reserved == 128
        first = second = third = None      # release exports
        arena.close()

    def test_exhaustion_returns_none_instead_of_raising(self):
        arena = ShmArena()
        seg = arena.create("slab", 64)
        alloc = SlabAllocator(seg.buf)
        assert alloc.allocate(8) is not None
        assert alloc.allocate(8) is None   # 64 bytes hold one 8-float row
        assert alloc.allocate(0) is None
        arena.close()


class TestHeaders:
    def test_header_layout_round_trips(self):
        arena = ShmArena()
        seg = arena.create("hdr", header_nbytes(3))
        view = header_view(seg.buf, 3)
        assert view.shape == (3, HEADER_FIELDS)
        view[2, HDR_FLOATS_RESIDENT] = 123
        reread = header_view(seg.buf, 3)
        assert reread[2, HDR_FLOATS_RESIDENT] == 123
        view = reread = None
        arena.close()


class TestPlanTrims:
    def test_no_deficit_means_no_trims(self):
        assert plan_trims([100, 200], budget=400) == [0, 0]
        assert plan_trims([], budget=0) == []

    def test_deficit_taken_from_the_largest_resident_first(self):
        assert plan_trims([100, 500, 200], budget=600) == [0, 200, 0]

    def test_trims_cap_at_each_workers_own_residency(self):
        # Deficit 700 exceeds what the largest alone can cover.
        assert plan_trims([100, 500, 200], budget=100) == [0, 500, 200]

    def test_total_never_exceeds_the_deficit(self):
        trims = plan_trims([300, 300, 300], budget=650)
        assert sum(trims) == 250


class TestSharedPartialStore:
    def test_rows_are_placed_in_the_slab(self):
        arena = ShmArena()
        seg = arena.create("part", 4096)
        store = SharedPartialStore(slab=seg, num_shards=1)
        cache = store.acquire("fp")
        cache.get_many(np.array([1, 2, 3]), rows_for(4))
        assert store.stats().shm_bytes_resident == 3 * 4 * 8
        assert store.stats().private_bytes_resident == 0
        store.close()
        arena.close()

    def test_publish_header_exports_residency(self):
        arena = ShmArena()
        hdr = arena.create("hdr", header_nbytes(1))
        seg = arena.create("part", 4096)
        header = header_view(hdr.buf, 1)[0]
        store = SharedPartialStore(slab=seg, header=header, num_shards=1)
        cache = store.acquire("fp")
        cache.get_many(np.array([5, 6]), rows_for(3))
        store.publish_header()
        assert header[HDR_FLOATS_RESIDENT] == 6
        header = None
        store.close()
        arena.close()

    def test_armed_store_trims_without_a_local_capacity(self):
        arena = ShmArena()
        seg = arena.create("part", 4096)
        store = SharedPartialStore(slab=seg, armed=True, num_shards=1)
        cache = store.acquire("fp")
        cache.get_many(np.arange(10), rows_for(4))
        evicted = store.trim(12)            # 12 floats = 3 width-4 rows
        assert evicted == 3
        assert store.floats_resident == 10 * 4 - 12
        store.close()
        arena.close()

    def test_unarmed_store_refuses_to_trim(self):
        store = SharedPartialStore()
        with pytest.raises(ModelError, match="armed"):
            store.trim(10)

    def test_close_releases_every_buffer_view(self):
        # An armed store and its caches form a governor reference
        # cycle; close() must break it so the segment's mapping can
        # actually be released (no BufferError at detach time).
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=4096)
        try:
            from repro.fx.shm import ShmSegment

            seg = ShmSegment(shm, owner=False)
            store = SharedPartialStore(slab=seg, armed=True, num_shards=1)
            cache = store.acquire("fp")
            cache.get_many(np.array([1, 2]), rows_for(4))
            store.close()
            store = cache = seg = None
            shm.close()                    # raises BufferError if leaked
        finally:
            shm.unlink()
