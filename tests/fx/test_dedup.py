"""DedupPlan: the once-per-batch FK sort."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.fx.dedup import DedupPlan, DimensionDedup


class TestForBatch:
    def test_unique_inverse_roundtrip(self):
        fks = [np.array([7, 3, 7, 7, 3, 9])]
        plan = DedupPlan.for_batch(fks)
        (dim,) = plan.dims
        assert dim.unique.tolist() == [3, 7, 9]
        np.testing.assert_array_equal(dim.unique[dim.inverse], fks[0])
        assert plan.rows == 6
        assert plan.distinct == (3,)

    def test_multiway_dims_in_spec_order(self):
        plan = DedupPlan.for_batch(
            [np.array([1, 1, 2]), np.array([5, 6, 5])]
        )
        assert plan.num_dimensions == 2
        assert plan.distinct == (2, 2)

    def test_empty_batch(self):
        plan = DedupPlan.for_batch([np.zeros(0, dtype=np.int64)])
        assert plan.rows == 0
        assert plan.distinct == (0,)
        assert plan.dedup_ratio == 1.0

    def test_mismatched_fk_lengths_rejected(self):
        with pytest.raises(ModelError, match="disagree"):
            DedupPlan.for_batch([np.arange(4), np.arange(5)])

    def test_dedup_ratio_counts_references_per_distinct(self):
        # 8 rows × 2 dims = 16 references over 2 + 4 distinct RIDs.
        plan = DedupPlan.for_batch(
            [np.arange(8) % 2, np.arange(8) % 4]
        )
        assert plan.dedup_ratio == pytest.approx(16 / 6)

    def test_matches_checks_shape(self):
        plan = DedupPlan.for_batch([np.arange(5)])
        assert plan.matches(5, 1)
        assert not plan.matches(4, 1)
        assert not plan.matches(5, 2)


class TestDimensionDedup:
    def test_gather_expands_per_distinct_rows(self):
        plan = DedupPlan.for_batch([np.array([4, 2, 4])])
        (dim,) = plan.dims
        per_distinct = np.array([[10.0], [20.0]])   # for RIDs [2, 4]
        np.testing.assert_array_equal(
            dim.gather(per_distinct), [[20.0], [10.0], [20.0]]
        )

    def test_gather_rejects_wrong_cardinality(self):
        (dim,) = DedupPlan.for_batch([np.array([1, 2])]).dims
        with pytest.raises(ModelError, match="distinct"):
            dim.gather(np.zeros((3, 1)))

    def test_group_index_matches_manual_reduction(self):
        fk = np.array([5, 9, 5, 5, 9])
        (dim,) = DedupPlan.for_batch([fk]).dims
        values = np.arange(10.0).reshape(5, 2)
        group = dim.group_index()
        expected = np.stack(
            [values[fk == 5].sum(axis=0), values[fk == 9].sum(axis=0)]
        )
        np.testing.assert_allclose(group.sum_rows(values), expected)

    def test_group_index_of_empty_batch_is_well_shaped(self):
        (dim,) = DedupPlan.for_batch([np.zeros(0, dtype=np.int64)]).dims
        group = dim.group_index()
        assert group.sum_rows(np.zeros((0, 3))).shape == (1, 3)

    def test_is_frozen(self):
        dedup = DimensionDedup(np.array([1]), np.array([0]))
        with pytest.raises(AttributeError):
            dedup.unique = np.array([2])
