"""Train-time plan reuse is a pure refactor: outputs pin to the seed.

The seed factorized each join block privately — dimension blocks held
the *full* page block (binary: the BNL outer block, multi-way: the
whole relation) and codes pointed into it.  The execution-core routing
keeps dimension blocks at the plan's *distinct referenced* RIDs with
group indexes bridged from the plan.  These tests reconstruct the seed
representation from the same join blocks and assert the refactor
changed nothing:

* every batch densifies to bit-identical wide rows;
* F-NN training (forward, backward, full fits — grouped backward
  included) is bit-identical;
* the GMM E-step is bit-identical; full GMM fits agree to within a few
  ULPs (the M-step's BLAS contractions now run over ``m`` distinct
  rows instead of the padded block, which only re-brackets float
  sums of the very same terms).
"""

import warnings

import numpy as np
import pytest

from repro.gmm.base import EMConfig, run_em
from repro.gmm.engines import FactorizedEMEngine
from repro.gmm.init import initial_params
from repro.gmm.model import ComponentPrecisions
from repro.join.batches import FactorizedBatch
from repro.join.bnl import iter_join_blocks
from repro.join.factorized import FactorizedJoin
from repro.linalg.design import FactorizedDesign
from repro.linalg.groupsum import GroupIndex, codes_for_keys
from repro.nn.algorithms import build_model
from repro.nn.base import NNConfig, run_training
from repro.nn.engines import FactorizedNNEngine


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


class SeedStyleFactorizedJoin:
    """The pre-refactor access path, reconstructed as the oracle.

    Identical page schedule and join blocks; only the *batch
    representation* differs: dimension blocks hold every row of the
    page block and the group codes are computed privately with
    ``codes_for_keys`` — exactly what ``join/factorized.py`` did
    before training was routed through ``fx.DedupPlan``.
    """

    def __init__(self, db, spec, *, block_pages=2):
        self.resolved = spec.resolve(db)
        self.block_pages = block_pages

    @property
    def num_rows(self):
        return self.resolved.num_rows

    @property
    def has_target(self):
        return self.resolved.has_target

    def batches(self, epoch=0):
        fact = self.resolved.fact
        for block in iter_join_blocks(
            self.resolved, block_pages=self.block_pages
        ):
            groups = [
                GroupIndex(codes_for_keys(fk, keys), feats.shape[0])
                for fk, keys, feats in zip(
                    block.fks, block.dim_keys, block.dim_features
                )
            ]
            design = FactorizedDesign(
                fact.project_features(block.fact_rows),
                list(block.dim_features),
                groups,
            )
            sids = fact.project_keys(block.fact_rows)
            targets = (
                fact.project_targets(block.fact_rows)
                if fact.schema.target_column is not None
                else None
            )
            yield FactorizedBatch(sids, design, targets)


def access_pair(db, spec, block_pages=2):
    return (
        FactorizedJoin(db, spec, block_pages=block_pages),
        SeedStyleFactorizedJoin(db, spec, block_pages=block_pages),
    )


def weights_bit_equal(a, b):
    for la, lb in zip(a.layers, b.layers):
        np.testing.assert_array_equal(la.weights, lb.weights)
        np.testing.assert_array_equal(la.bias, lb.bias)


class TestRepresentationExactness:
    @pytest.mark.parametrize("star_fixture", ["binary_star",
                                              "multiway_star"])
    def test_batches_densify_bit_identical(self, request, star_fixture):
        star = request.getfixturevalue(star_fixture)
        db = request.getfixturevalue("db")
        new, seed = access_pair(db, star.spec)
        for batch_new, batch_seed in zip(new.batches(), seed.batches()):
            np.testing.assert_array_equal(
                batch_new.densify().features,
                batch_seed.densify().features,
            )
            np.testing.assert_array_equal(
                batch_new.targets, batch_seed.targets
            )

    def test_dimension_blocks_shrink_to_referenced_rids(
        self, db, multiway_star
    ):
        """The refactor's one representational change: blocks hold only
        the RIDs the batch references, like a serving partial cache."""
        new, seed = access_pair(db, multiway_star.spec)
        for batch_new, batch_seed in zip(new.batches(), seed.batches()):
            for i, dim in enumerate(batch_new.plan.dims):
                assert (
                    batch_new.design.dim_blocks[i].shape[0] == dim.m
                )
                assert (
                    batch_seed.design.dim_blocks[i].shape[0] >= dim.m
                )


class TestNNBitExactness:
    def test_first_preactivations_bit_identical(self, db, binary_star):
        config = NNConfig(hidden_sizes=(7,), seed=3)
        new, seed = access_pair(db, binary_star.spec)
        model = build_model(8, config)
        engine_new = FactorizedNNEngine(new, model)
        engine_seed = FactorizedNNEngine(seed, model)
        for batch_new, batch_seed in zip(new.batches(), seed.batches()):
            np.testing.assert_array_equal(
                engine_new.first_preactivations(batch_new),
                engine_seed.first_preactivations(batch_seed),
            )

    @pytest.mark.parametrize("grouped", [False, True])
    @pytest.mark.parametrize("batch_mode", ["full", "per-batch"])
    def test_fit_bit_identical(self, db, binary_star, grouped,
                               batch_mode):
        config = NNConfig(
            hidden_sizes=(6,), epochs=3, learning_rate=0.1,
            batch_mode=batch_mode, seed=6, grouped_backward=grouped,
        )
        new, seed = access_pair(db, binary_star.spec)
        fit_new = run_training(
            FactorizedNNEngine(
                new, build_model(8, config), grouped_backward=grouped
            ),
            config, algorithm="F-NN",
        )
        fit_seed = run_training(
            FactorizedNNEngine(
                seed, build_model(8, config), grouped_backward=grouped
            ),
            config, algorithm="F-NN",
        )
        assert fit_new.loss_history == fit_seed.loss_history
        weights_bit_equal(fit_new.model, fit_seed.model)

    def test_multiway_fit_bit_identical(self, db, multiway_star):
        config = NNConfig(
            hidden_sizes=(5,), epochs=2, learning_rate=0.05, seed=2,
        )
        new, seed = access_pair(db, multiway_star.spec, block_pages=3)
        n_features = new.resolved.total_features
        fit_new = run_training(
            FactorizedNNEngine(new, build_model(n_features, config)),
            config, algorithm="F-NN",
        )
        fit_seed = run_training(
            FactorizedNNEngine(seed, build_model(n_features, config)),
            config, algorithm="F-NN",
        )
        weights_bit_equal(fit_new.model, fit_seed.model)


class TestGMMExactness:
    def test_estep_bit_identical(self, db, binary_star):
        new, seed = access_pair(db, binary_star.spec)
        engine_new = FactorizedEMEngine(new, 8)
        engine_seed = FactorizedEMEngine(seed, 8)
        params = initial_params(engine_new.init_sample(300), 3, seed=0)
        precisions = ComponentPrecisions(params.covariances, 1e-6)
        for batch_new, batch_seed in zip(new.batches(), seed.batches()):
            gamma_new, ll_new = engine_new.estep_batch(
                batch_new, params, precisions
            )
            gamma_seed, ll_seed = engine_seed.estep_batch(
                batch_seed, params, precisions
            )
            np.testing.assert_array_equal(gamma_new, gamma_seed)
            np.testing.assert_array_equal(ll_new, ll_seed)

    @pytest.mark.parametrize("star_fixture", ["binary_star",
                                              "multiway_star"])
    def test_fit_matches_to_ulps(self, request, star_fixture):
        """Full fits re-bracket the M-step's float sums (same terms,
        zero-weight padding rows dropped) — pinned at 1e-12 relative,
        far inside the 1e-8/1e-9 the cross-strategy suite tolerates."""
        star = request.getfixturevalue(star_fixture)
        db = request.getfixturevalue("db")
        config = EMConfig(n_components=3, max_iter=3, tol=0.0, seed=2)
        new, seed = access_pair(db, star.spec)
        n_features = new.resolved.total_features
        fit_new = run_em(
            FactorizedEMEngine(new, n_features), config, algorithm="F"
        )
        fit_seed = run_em(
            FactorizedEMEngine(seed, n_features), config, algorithm="F"
        )
        np.testing.assert_allclose(
            fit_new.params.means, fit_seed.params.means,
            rtol=1e-12, atol=1e-13,
        )
        np.testing.assert_allclose(
            fit_new.params.covariances, fit_seed.params.covariances,
            rtol=1e-12, atol=1e-13,
        )
        np.testing.assert_allclose(
            fit_new.params.weights, fit_seed.params.weights, rtol=1e-12
        )
        np.testing.assert_allclose(
            fit_new.log_likelihood_history,
            fit_seed.log_likelihood_history,
            rtol=1e-12,
        )
