"""Store-wide memory budget: cross-cache eviction, pins, exactness."""

import threading
import warnings

import numpy as np
import pytest

from repro.core.api import fit_nn, serve, serve_runtime
from repro.errors import ModelError
from repro.fx.store import PartialStore
from repro.serve.service import ModelService


@pytest.fixture(autouse=True)
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


def rows_for(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return keys[:, None].astype(np.float64)       # 1 float per row


class TestGlobalBudget:
    def test_invalid_budget_rejected(self):
        with pytest.raises(ModelError, match="capacity_floats"):
            PartialStore(capacity_floats=0)

    def test_budget_spans_fingerprints(self):
        store = PartialStore(capacity_floats=10)
        a = store.acquire("fp-a")
        b = store.acquire("fp-b")
        a.get_many(np.arange(6), rows_for)        # 6 floats resident
        assert store.floats_resident == 6         # under budget, no evict
        b.get_many(np.arange(6), rows_for)        # 12 > 10
        assert store.floats_resident == 10
        stats = store.stats()
        assert stats.cross_evictions == 2
        assert stats.capacity_floats == 10

    def test_eviction_order_is_global_lru(self):
        store = PartialStore(capacity_floats=10)
        a = store.acquire("fp-a")
        b = store.acquire("fp-b")
        a.get_many(np.arange(6), rows_for)        # ticks 1..6
        b.get_many(np.arange(6), rows_for)        # ticks 7..12 -> evict 2
        # The two globally coldest rows were cache A's keys 0 and 1;
        # cache B (all newer) kept everything.
        assert 0 not in a and 1 not in a
        assert all(k in a for k in range(2, 6))
        assert all(k in b for k in range(6))

    def test_hot_fingerprint_takes_share_from_cold_one(self):
        store = PartialStore(capacity_floats=8)
        cold = store.acquire("fp-cold")
        hot = store.acquire("fp-hot")
        cold.get_many(np.arange(4), rows_for)
        for _ in range(3):                        # keep hot keys recent
            hot.get_many(np.arange(6), rows_for)
        shares = store.stats().fingerprints
        assert shares["fp-hot"] == 6 * 8          # fully resident
        assert shares["fp-cold"] == 2 * 8         # squeezed to the rest

    def test_tinylfu_rank_prefers_low_frequency_victims(self):
        store = PartialStore(capacity_floats=2, admission="tinylfu")
        a = store.acquire("fp-a")
        b = store.acquire("fp-b")
        for _ in range(3):
            a.get_many(np.array([1]), rows_for)   # freq 3, oldest tick
        b.get_many(np.array([2]), rows_for)       # freq 1
        store.acquire("fp-c").get_many(np.array([3]), rows_for)
        # Pure LRU would evict a's key 1 (oldest tick); frequency rank
        # protects it and takes b's one-hit wonder instead.
        assert 1 in a
        assert 2 not in b

    def test_tinylfu_sample_sees_past_a_hot_lru_tail_row(self):
        store = PartialStore(capacity_floats=3, admission="tinylfu")
        a = store.acquire("fp-a")
        for _ in range(5):
            a.get_many(np.array([1]), rows_for)   # hot (freq 5)
        a.get_many(np.array([2]), rows_for)
        a.get_many(np.array([3]), rows_for)
        # LRU order is now [1, 2, 3]: the hot row sits at the eviction
        # end.  The bounded sample must look past it to the cold rows.
        a.get_many(np.array([4]), rows_for)       # push over budget
        assert 1 in a
        assert 2 not in a                         # coldest of the rest

    def test_lru_rank_evicts_oldest_tick(self):
        store = PartialStore(capacity_floats=2)
        a = store.acquire("fp-a")
        b = store.acquire("fp-b")
        for _ in range(3):
            a.get_many(np.array([1]), rows_for)
        b.get_many(np.array([2]), rows_for)
        store.acquire("fp-c").get_many(np.array([3]), rows_for)
        # Without the sketch the same workload evicts by recency: a's
        # key 1 was touched last two ticks before b's key 2.
        assert 1 not in a
        assert 2 in b

    def test_cross_evictions_visible_per_cache_and_store(self):
        store = PartialStore(capacity_floats=4)
        a = store.acquire("fp-a")
        b = store.acquire("fp-b")
        a.get_many(np.arange(4), rows_for)
        b.get_many(np.arange(4), rows_for)
        stats = store.stats()
        assert stats.cross_evictions == 4
        assert stats.cache.cross_evictions == 4   # aggregated per cache
        assert a.stats().cross_evictions == 4     # all victims were a's
        assert a.stats().evictions == 0           # not local capacity
        assert stats.bytes_resident <= 4 * 8

    def test_ungoverned_store_never_cross_evicts(self):
        store = PartialStore()
        a = store.acquire("fp-a")
        a.get_many(np.arange(100), rows_for)
        assert store.enforce_budget() == 0
        assert len(a) == 100
        assert store.stats().cross_evictions == 0


class TestPins:
    def test_pinned_rows_survive_cross_cache_eviction(self):
        store = PartialStore(capacity_floats=10)
        a = store.acquire("fp-a")
        b = store.acquire("fp-b")
        a.get_many(np.arange(6), rows_for)
        a.pin(np.array([0, 1]))                   # a batch stands on 0, 1
        try:
            b.get_many(np.arange(6), rows_for)
            # The two globally coldest rows (a's 0 and 1) are pinned;
            # eviction skipped to the next-coldest (a's 2 and 3).
            assert 0 in a and 1 in a
            assert 2 not in a and 3 not in a
        finally:
            a.unpin(np.array([0, 1]))
        # Once released they are fair game again.
        a.get_many(np.array([9]), rows_for)       # push over budget
        assert store.floats_resident <= 10

    def test_fully_pinned_store_overshoots_instead_of_thrashing(self):
        store = PartialStore(capacity_floats=2)
        a = store.acquire("fp-a")
        a.get_many(np.arange(2), rows_for)
        a.pin(np.arange(4))
        try:
            a.get_many(np.arange(4), rows_for)    # 4 floats, all pinned
            assert store.floats_resident == 4     # transient overshoot
        finally:
            a.unpin(np.arange(4))
        assert store.enforce_budget() == 2
        assert store.floats_resident == 2

    def test_invalidation_overrides_pins(self):
        store = PartialStore(capacity_floats=100)
        a = store.acquire("fp-a")
        a.get_many(np.arange(3), rows_for)
        a.pin(np.array([0]))
        try:
            assert a.invalidate(np.array([0])) == 1
            assert 0 not in a
        finally:
            a.unpin(np.array([0]))


class TestConcurrentBudget:
    def test_exact_rows_and_bounded_residency_under_contention(self):
        store = PartialStore(num_shards=2, capacity_floats=16)
        caches = [store.acquire(f"fp-{i}") for i in range(2)]
        rng = np.random.default_rng(3)
        batches = [
            np.asarray(
                sorted(rng.choice(64, size=12, replace=False)),
                dtype=np.int64,
            )
            for _ in range(40)
        ]
        errors = []

        def worker(cache, my_batches):
            try:
                for keys in my_batches:
                    rows = cache.get_many(keys, rows_for)
                    np.testing.assert_array_equal(rows, rows_for(keys))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(cache, batches[i::4]))
            for i, cache in enumerate(caches * 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every batch enforced on its way out; with no pins left the
        # store must sit within its budget.
        assert store.floats_resident <= 16
        assert store.stats().cross_evictions > 0


class TestServiceBudget:
    def test_store_and_budget_are_mutually_exclusive(self, db):
        with pytest.raises(ModelError, match="store or a memory_budget"):
            ModelService(db, store=PartialStore(), memory_budget=1024)

    def test_invalid_budget_rejected(self, db):
        with pytest.raises(ModelError, match="memory_budget"):
            serve(db, memory_budget=0)

    def test_two_models_under_half_budget_stay_bit_exact(
        self, db, binary_star
    ):
        nn1 = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        nn2 = fit_nn(
            db, binary_star.spec, hidden_sizes=(6,), epochs=1, seed=2
        )
        fact = binary_star.spec.resolve(db).fact
        rows = fact.scan()
        features = fact.project_features(rows)
        fk = rows[:, fact.schema.fk_position("R1")].astype(np.int64)

        unbounded = serve(db)
        unbounded.register_nn("one", nn1, binary_star.spec)
        unbounded.register_nn("two", nn2, binary_star.spec)
        base1 = unbounded.predict("one", features, fk)
        base2 = unbounded.predict("two", features, fk)
        working_set = unbounded.store.bytes_resident
        unbounded.close()

        budget = working_set // 2
        governed = serve(db, memory_budget=budget)
        governed.register_nn("one", nn1, binary_star.spec)
        governed.register_nn("two", nn2, binary_star.spec)
        out1 = governed.predict("one", features, fk)
        out2 = governed.predict("two", features, fk)
        np.testing.assert_array_equal(out1, base1)
        np.testing.assert_array_equal(out2, base2)
        assert governed.store.bytes_resident <= budget
        assert governed.store_stats().cross_evictions > 0
        governed.close()

    def test_failed_registration_releases_partial_acquires(
        self, db, multiway_star
    ):
        nn = fit_nn(
            db, multiway_star.spec, hidden_sizes=(6,), epochs=1, seed=1
        )
        service = serve(db)
        service.register_nn(
            "a", nn, multiway_star.spec, cache_entries=[10, 10]
        )
        # Same fingerprints, conflicting bound on the *second*
        # dimension: the first dimension's acquire succeeded and must
        # be rolled back when the second raises.
        with pytest.raises(ModelError, match="capacity"):
            service.register_nn(
                "b", nn, multiway_star.spec, cache_entries=[10, 20]
            )
        service.unregister("a")
        assert len(service.store) == 0      # no leaked refcounts
        service.close()

    def test_runtime_memory_budget_threads_to_the_store(self, db):
        with serve_runtime(db, num_workers=1, memory_budget=4096) as rt:
            assert rt.store.capacity_floats == 4096 // 8
            assert rt.runtime_stats().store.capacity_floats == 4096 // 8
        with pytest.raises(ModelError, match="memory_budget"):
            serve_runtime(db, memory_budget=-1)
