"""Batch containers: validation, densify, take."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.join.batches import DenseBatch, FactorizedBatch
from repro.linalg.design import FactorizedDesign
from repro.linalg.groupsum import GroupIndex


def make_factorized(rng, n=20, d_s=2, m=4, d_r=3, with_target=True):
    design = FactorizedDesign(
        rng.normal(size=(n, d_s)),
        [rng.normal(size=(m, d_r))],
        [GroupIndex(rng.integers(0, m, size=n), m)],
    )
    targets = rng.normal(size=n) if with_target else None
    return FactorizedBatch(np.arange(n), design, targets)


class TestDenseBatch:
    def test_row_count(self, rng):
        batch = DenseBatch(np.arange(5), rng.normal(size=(5, 3)))
        assert batch.n == 5

    def test_id_count_mismatch(self, rng):
        with pytest.raises(ModelError):
            DenseBatch(np.arange(4), rng.normal(size=(5, 3)))

    def test_target_shape_mismatch(self, rng):
        with pytest.raises(ModelError):
            DenseBatch(
                np.arange(5), rng.normal(size=(5, 3)), np.zeros(4)
            )

    def test_one_dim_features_rejected(self, rng):
        with pytest.raises(ModelError):
            DenseBatch(np.arange(5), rng.normal(size=5))

    def test_take_subsets_all_fields(self, rng):
        batch = DenseBatch(
            np.arange(6), rng.normal(size=(6, 2)), rng.normal(size=6)
        )
        taken = batch.take(np.array([4, 1]))
        np.testing.assert_array_equal(taken.sids, [4, 1])
        np.testing.assert_array_equal(
            taken.features, batch.features[[4, 1]]
        )
        np.testing.assert_array_equal(
            taken.targets, batch.targets[[4, 1]]
        )

    def test_take_without_targets(self, rng):
        batch = DenseBatch(np.arange(6), rng.normal(size=(6, 2)))
        assert batch.take(np.array([0])).targets is None


class TestFactorizedBatch:
    def test_row_count(self, rng):
        assert make_factorized(rng, n=17).n == 17

    def test_id_mismatch(self, rng):
        design = FactorizedDesign(
            rng.normal(size=(5, 2)),
            [rng.normal(size=(2, 2))],
            [GroupIndex(np.zeros(5, dtype=np.int64), 2)],
        )
        with pytest.raises(ModelError):
            FactorizedBatch(np.arange(4), design)

    def test_densify_round_trip(self, rng):
        batch = make_factorized(rng)
        dense = batch.densify()
        assert isinstance(dense, DenseBatch)
        np.testing.assert_array_equal(dense.sids, batch.sids)
        np.testing.assert_array_equal(
            dense.features, batch.design.densify()
        )
        np.testing.assert_array_equal(dense.targets, batch.targets)

    def test_take_matches_dense_take(self, rng):
        batch = make_factorized(rng, n=30)
        picks = np.array([7, 3, 3, 28])
        np.testing.assert_allclose(
            batch.take(picks).densify().features,
            batch.densify().take(picks).features,
        )

    def test_take_shares_dimension_blocks(self, rng):
        batch = make_factorized(rng)
        taken = batch.take(np.arange(5))
        assert (
            taken.design.dim_blocks[0] is batch.design.dim_blocks[0]
        )
