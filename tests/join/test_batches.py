"""Batch containers: validation, densify, take."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.join.batches import DenseBatch, FactorizedBatch
from repro.linalg.design import FactorizedDesign
from repro.linalg.groupsum import GroupIndex

from tests.conftest import make_binary_relations


def make_factorized(rng, n=20, d_s=2, m=4, d_r=3, with_target=True):
    design = FactorizedDesign(
        rng.normal(size=(n, d_s)),
        [rng.normal(size=(m, d_r))],
        [GroupIndex(rng.integers(0, m, size=n), m)],
    )
    targets = rng.normal(size=n) if with_target else None
    return FactorizedBatch(np.arange(n), design, targets)


class TestDenseBatch:
    def test_row_count(self, rng):
        batch = DenseBatch(np.arange(5), rng.normal(size=(5, 3)))
        assert batch.n == 5

    def test_id_count_mismatch(self, rng):
        with pytest.raises(ModelError):
            DenseBatch(np.arange(4), rng.normal(size=(5, 3)))

    def test_target_shape_mismatch(self, rng):
        with pytest.raises(ModelError):
            DenseBatch(
                np.arange(5), rng.normal(size=(5, 3)), np.zeros(4)
            )

    def test_one_dim_features_rejected(self, rng):
        with pytest.raises(ModelError):
            DenseBatch(np.arange(5), rng.normal(size=5))

    def test_take_subsets_all_fields(self, rng):
        batch = DenseBatch(
            np.arange(6), rng.normal(size=(6, 2)), rng.normal(size=6)
        )
        taken = batch.take(np.array([4, 1]))
        np.testing.assert_array_equal(taken.sids, [4, 1])
        np.testing.assert_array_equal(
            taken.features, batch.features[[4, 1]]
        )
        np.testing.assert_array_equal(
            taken.targets, batch.targets[[4, 1]]
        )

    def test_take_without_targets(self, rng):
        batch = DenseBatch(np.arange(6), rng.normal(size=(6, 2)))
        assert batch.take(np.array([0])).targets is None


class TestFactorizedBatch:
    def test_row_count(self, rng):
        assert make_factorized(rng, n=17).n == 17

    def test_id_mismatch(self, rng):
        design = FactorizedDesign(
            rng.normal(size=(5, 2)),
            [rng.normal(size=(2, 2))],
            [GroupIndex(np.zeros(5, dtype=np.int64), 2)],
        )
        with pytest.raises(ModelError):
            FactorizedBatch(np.arange(4), design)

    def test_densify_round_trip(self, rng):
        batch = make_factorized(rng)
        dense = batch.densify()
        assert isinstance(dense, DenseBatch)
        np.testing.assert_array_equal(dense.sids, batch.sids)
        np.testing.assert_array_equal(
            dense.features, batch.design.densify()
        )
        np.testing.assert_array_equal(dense.targets, batch.targets)

    def test_take_matches_dense_take(self, rng):
        batch = make_factorized(rng, n=30)
        picks = np.array([7, 3, 3, 28])
        np.testing.assert_allclose(
            batch.take(picks).densify().features,
            batch.densify().take(picks).features,
        )

    def test_take_shares_dimension_blocks(self, rng):
        batch = make_factorized(rng)
        taken = batch.take(np.arange(5))
        assert (
            taken.design.dim_blocks[0] is batch.design.dim_blocks[0]
        )


class TestBatchPlans:
    def test_join_batches_carry_plans(self, tiny_db, rng):
        from repro.join.factorized import FactorizedJoin
        from repro.join.stream import StreamingJoin

        spec = make_binary_relations(tiny_db, rng)
        for access in (
            StreamingJoin(tiny_db, spec, block_pages=2),
            FactorizedJoin(tiny_db, spec, block_pages=2),
        ):
            for batch in access.batches():
                assert batch.plan is not None
                assert batch.plan.matches(batch.n, 1)

    def test_hand_built_batches_have_no_plan(self, rng):
        dense = DenseBatch(np.arange(5), rng.normal(size=(5, 3)))
        assert dense.plan is None
        assert make_factorized(rng).plan is None

    def test_mismatched_plan_rejected(self, rng):
        from repro.fx.dedup import DedupPlan

        batch = make_factorized(rng, n=20)
        stale = DedupPlan.for_batch(
            [rng.integers(0, 4, size=19).astype(np.int64)]
        )
        with pytest.raises(ModelError, match="plan"):
            FactorizedBatch(
                batch.sids, batch.design, batch.targets, plan=stale
            )

    def test_take_drops_the_plan(self, tiny_db, rng):
        from repro.join.factorized import FactorizedJoin

        spec = make_binary_relations(tiny_db, rng)
        batch = next(
            iter(FactorizedJoin(tiny_db, spec, block_pages=2).batches())
        )
        assert batch.plan is not None
        assert batch.take(np.arange(3)).plan is None

    def test_distinct_rows_match_unique_rids(self, tiny_db, rng):
        """JoinBlock.distinct_rows(i) holds exactly the features of the
        plan's sorted distinct RIDs."""
        from repro.join.bnl import iter_join_blocks

        spec = make_binary_relations(tiny_db, rng, n_s=120, n_r=10)
        resolved = spec.resolve(tiny_db)
        for block in iter_join_blocks(resolved, block_pages=2):
            dim = block.plan.dims[0]
            rows = block.distinct_rows(0)
            assert rows.shape[0] == dim.m
            key_to_row = {
                int(k): block.dim_features[0][i]
                for i, k in enumerate(block.dim_keys[0])
            }
            for rid, row in zip(dim.unique, rows):
                np.testing.assert_array_equal(row, key_to_row[int(rid)])
