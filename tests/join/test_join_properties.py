"""Property-based join correctness over random star schemas.

For arbitrary relation sizes, widths, FK patterns, and page/block
geometries, all three access paths must produce the same multiset of
joined tuples as the naive nested-loop reference.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.join.factorized import FactorizedJoin
from repro.join.materialize import MaterializedTable, materialize_join
from repro.join.reference import nested_loop_join
from repro.join.stream import StreamingJoin
from repro.storage.catalog import Database
from repro.storage.schema import (
    Schema,
    features,
    foreign_key,
    key,
    target,
)


@st.composite
def star_case(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n_s = draw(st.integers(min_value=1, max_value=80))
    q = draw(st.integers(min_value=1, max_value=2))
    dims = [
        (
            draw(st.integers(min_value=1, max_value=12)),
            draw(st.integers(min_value=1, max_value=3)),
        )
        for _ in range(q)
    ]
    d_s = draw(st.integers(min_value=1, max_value=3))
    with_target = draw(st.booleans())
    block_pages = draw(st.sampled_from([1, 2, 7]))
    page_size = draw(st.sampled_from([128, 512]))
    return seed, n_s, d_s, dims, with_target, block_pages, page_size


def build_db(tmp_dir, seed, n_s, d_s, dims, with_target, page_size):
    rng = np.random.default_rng(seed)
    db = Database(tmp_dir, page_size_bytes=page_size)
    dim_names = []
    for i, (n_r, d_r) in enumerate(dims, start=1):
        name = f"R{i}"
        dim_names.append(name)
        rows = np.column_stack(
            [
                np.arange(n_r, dtype=np.float64) * 2 + 1,  # sparse keys
                rng.normal(size=(n_r, d_r)),
            ]
        )
        db.create_relation(
            name, Schema([key("rid"), *features("a", d_r)]), rows
        )
    columns = [key("sid")]
    parts = [np.arange(n_s, dtype=np.float64)[:, None]]
    if with_target:
        columns.append(target("y"))
        parts.append(rng.normal(size=(n_s, 1)))
    columns.extend(features("x", d_s))
    parts.append(rng.normal(size=(n_s, d_s)))
    for i, (n_r, _) in enumerate(dims, start=1):
        columns.append(foreign_key(f"fk{i}", f"R{i}"))
        fk_values = rng.integers(0, n_r, size=n_s) * 2 + 1
        parts.append(fk_values[:, None].astype(np.float64))
    db.create_relation(
        "S", Schema(columns), np.concatenate(parts, axis=1)
    )
    from repro.join.spec import DimensionJoin, JoinSpec

    return db, JoinSpec(
        "S",
        [DimensionJoin(f"R{i}", f"fk{i}") for i in range(1, len(dims) + 1)],
    )


def sorted_rows(sids, features_matrix, targets):
    order = np.lexsort((features_matrix[:, 0], sids))
    rows = [sids[order], features_matrix[order]]
    if targets is not None:
        rows.append(targets[order])
    return rows


@given(case=star_case())
@settings(max_examples=30, deadline=None)
def test_all_access_paths_agree(case, tmp_path_factory):
    seed, n_s, d_s, dims, with_target, block_pages, page_size = case
    tmp_dir = tmp_path_factory.mktemp("star")
    db, spec = build_db(
        tmp_dir, seed, n_s, d_s, dims, with_target, page_size
    )
    try:
        reference = nested_loop_join(db, spec)
        expected = sorted_rows(
            reference.sids, reference.features, reference.targets
        )

        def check(batches):
            batches = list(batches)
            sids = np.concatenate([b.sids for b in batches])
            feats = np.concatenate([b.features for b in batches])
            targets = (
                np.concatenate([b.targets for b in batches])
                if with_target
                else None
            )
            got = sorted_rows(sids, feats, targets)
            for e, g in zip(expected, got):
                np.testing.assert_allclose(e, g)

        check(StreamingJoin(db, spec, block_pages=block_pages).batches())
        check(
            b.densify()
            for b in FactorizedJoin(
                db, spec, block_pages=block_pages
            ).batches()
        )
        table = materialize_join(
            db, spec, "T_prop", block_pages=block_pages, replace=True
        )
        check(MaterializedTable(table, block_pages=block_pages).batches())
    finally:
        db.close(delete=True)
