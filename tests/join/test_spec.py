"""Join specification validation and derived metadata."""

import numpy as np
import pytest

from repro.errors import JoinError
from repro.join.spec import DimensionJoin, JoinSpec
from repro.linalg.blocks import BlockLayout
from repro.storage.schema import (
    ColumnRole,
    Schema,
    feature,
    features,
    foreign_key,
    key,
)

from tests.conftest import make_binary_relations


class TestConstruction:
    def test_needs_dimensions(self):
        with pytest.raises(JoinError):
            JoinSpec("S", [])

    def test_duplicate_fk_columns_rejected(self):
        with pytest.raises(JoinError, match="duplicate"):
            JoinSpec(
                "S",
                [DimensionJoin("R1", "fk"), DimensionJoin("R2", "fk")],
            )

    def test_binary_helper(self):
        spec = JoinSpec.binary("S", "R")
        assert spec.fact == "S"
        assert spec.num_dimensions == 1
        assert spec.dimensions[0].relation == "R"


class TestResolution:
    def test_resolves_valid_binary(self, db, rng):
        spec = make_binary_relations(db, rng)
        resolved = spec.resolve(db)
        assert resolved.fact.name == "S"
        assert resolved.num_rows == 300
        assert resolved.layout == BlockLayout([3, 4])
        assert resolved.total_features == 7
        assert not resolved.has_target

    def test_has_target(self, db, rng):
        spec = make_binary_relations(db, rng, with_target=True)
        assert spec.resolve(db).has_target

    def test_missing_fact(self, db):
        with pytest.raises(JoinError, match="fact relation"):
            JoinSpec.binary("ghost", "R").resolve(db)

    def test_missing_dimension(self, db, rng):
        make_binary_relations(db, rng)
        with pytest.raises(JoinError, match="dimension relation"):
            JoinSpec.binary("S", "ghost").resolve(db)

    def test_dimension_without_key(self, db, rng):
        db.create_relation("NoKey", Schema([feature("x")]))
        make_binary_relations(db, rng)
        spec = JoinSpec("S", [DimensionJoin("NoKey", "fk")])
        with pytest.raises(JoinError, match="no primary key"):
            spec.resolve(db)

    def test_wrong_fk_column_name(self, db, rng):
        make_binary_relations(db, rng)
        spec = JoinSpec("S", [DimensionJoin("R", "nope")])
        with pytest.raises(JoinError, match="no column"):
            spec.resolve(db)

    def test_fk_column_not_a_foreign_key(self, db, rng):
        make_binary_relations(db, rng)
        spec = JoinSpec("S", [DimensionJoin("R", "x0")])
        with pytest.raises(JoinError, match="not a foreign key"):
            spec.resolve(db)

    def test_fk_references_other_relation(self, db, rng):
        make_binary_relations(db, rng)
        db.create_relation("R2", Schema([key("rid"), feature("z")]))
        spec = JoinSpec("S", [DimensionJoin("R2", "fk")])
        with pytest.raises(JoinError, match="references"):
            spec.resolve(db)

    def test_fk_inference_when_unambiguous(self, db, rng):
        spec = make_binary_relations(db, rng)
        inferred = JoinSpec("S", [DimensionJoin("R", "")])
        resolved = inferred.resolve(db)
        assert resolved.dimensions[0].fk == "fk"

    def test_fk_inference_ambiguous(self, db):
        db.create_relation("R", Schema([key("rid"), feature("a")]))
        db.create_relation(
            "S",
            Schema(
                [
                    key("sid"),
                    feature("x"),
                    foreign_key("f1", "R"),
                    foreign_key("f2", "R"),
                ]
            ),
        )
        with pytest.raises(JoinError, match="cannot infer"):
            JoinSpec("S", [DimensionJoin("R", "")]).resolve(db)


class TestOutputSchema:
    def test_binary_output_schema(self, db, rng):
        spec = make_binary_relations(db, rng, with_target=True)
        schema = spec.resolve(db).output_schema()
        assert schema.key_column.name == "sid"
        assert schema.target_column.name == "y"
        assert schema.feature_names == (
            "S__x0", "S__x1", "S__x2", "R__a0", "R__a1", "R__a2", "R__a3",
        )
        # Foreign keys are projected out (Section IV).
        assert not schema.foreign_keys

    def test_multiway_output_schema(self, multiway_star, db):
        resolved = multiway_star.spec.resolve(db)
        schema = resolved.output_schema()
        assert schema.num_features == resolved.total_features
        roles = {c.role for c in schema.columns}
        assert ColumnRole.FOREIGN_KEY not in roles


class TestIntegrity:
    def test_clean_data_passes(self, db, rng):
        spec = make_binary_relations(db, rng)
        spec.resolve(db).check_integrity()

    def test_dangling_fk_detected(self, db, rng):
        spec = make_binary_relations(db, rng)
        bad = np.zeros((1, db["S"].schema.width))
        bad[0, db["S"].schema.key_position] = 9999
        bad[0, db["S"].schema.fk_position("R")] = 777  # no such key
        db["S"].append(bad)
        with pytest.raises(JoinError, match="dangling"):
            spec.resolve(db).check_integrity()
