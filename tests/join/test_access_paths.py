"""The three access paths agree with the naive reference join."""

import math

import numpy as np
import pytest

from repro.errors import JoinError
from repro.join.batches import DenseBatch
from repro.join.bnl import iter_join_blocks
from repro.join.factorized import FactorizedJoin
from repro.join.materialize import MaterializedTable, materialize_join
from repro.join.reference import nested_loop_join
from repro.join.stream import StreamingJoin

from tests.conftest import make_binary_relations


def canonical(batch: DenseBatch):
    order = np.argsort(batch.sids, kind="stable")
    targets = None if batch.targets is None else batch.targets[order]
    return batch.sids[order], batch.features[order], targets


def collect_dense(batches):
    batches = list(batches)
    sids = np.concatenate([b.sids for b in batches])
    features = np.concatenate([b.features for b in batches])
    targets = (
        None
        if batches[0].targets is None
        else np.concatenate([b.targets for b in batches])
    )
    return DenseBatch(sids, features, targets)


class TestStreamingJoin:
    def test_matches_reference(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng, with_target=True)
        reference = nested_loop_join(tiny_db, spec)
        stream = StreamingJoin(tiny_db, spec, block_pages=2)
        got = collect_dense(stream.batches())
        for expected, actual in zip(canonical(reference), canonical(got)):
            np.testing.assert_allclose(expected, actual)

    def test_each_pass_identical(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng)
        stream = StreamingJoin(tiny_db, spec, block_pages=3)
        first = collect_dense(stream.batches())
        second = collect_dense(stream.batches())
        np.testing.assert_array_equal(first.features, second.features)

    def test_num_rows(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng, n_s=123)
        stream = StreamingJoin(tiny_db, spec)
        assert stream.num_rows == 123

    def test_shuffle_permutes_but_preserves_multiset(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng)
        plain = collect_dense(
            StreamingJoin(tiny_db, spec, block_pages=2).batches()
        )
        shuffled = collect_dense(
            StreamingJoin(
                tiny_db, spec, block_pages=2, shuffle=True, seed=3
            ).batches()
        )
        assert not np.array_equal(plain.sids, shuffled.sids)
        np.testing.assert_array_equal(
            np.sort(plain.sids), np.sort(shuffled.sids)
        )

    def test_shuffle_varies_by_epoch(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng)
        stream = StreamingJoin(
            tiny_db, spec, block_pages=2, shuffle=True, seed=3
        )
        epoch0 = collect_dense(stream.batches(epoch=0))
        epoch1 = collect_dense(stream.batches(epoch=1))
        assert not np.array_equal(epoch0.sids, epoch1.sids)

    def test_shuffle_deterministic_per_seed_epoch(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng)
        a = collect_dense(
            StreamingJoin(
                tiny_db, spec, block_pages=2, shuffle=True, seed=3
            ).batches(epoch=5)
        )
        b = collect_dense(
            StreamingJoin(
                tiny_db, spec, block_pages=2, shuffle=True, seed=3
            ).batches(epoch=5)
        )
        np.testing.assert_array_equal(a.sids, b.sids)


class TestFactorizedJoin:
    def test_densified_matches_reference(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng, with_target=True)
        reference = nested_loop_join(tiny_db, spec)
        factorized = FactorizedJoin(tiny_db, spec, block_pages=2)
        got = collect_dense(b.densify() for b in factorized.batches())
        for expected, actual in zip(canonical(reference), canonical(got)):
            np.testing.assert_allclose(expected, actual)

    def test_same_page_schedule_as_streaming(self, tiny_db, rng):
        """F reads exactly the pages S reads — compute isolation."""
        spec = make_binary_relations(tiny_db, rng)
        tiny_db.reset_stats()
        for _ in StreamingJoin(tiny_db, spec, block_pages=2).batches():
            pass
        streaming_io = tiny_db.stats.snapshot()
        tiny_db.reset_stats()
        for _ in FactorizedJoin(tiny_db, spec, block_pages=2).batches():
            pass
        factorized_io = tiny_db.stats.snapshot()
        assert streaming_io.pages_read == factorized_io.pages_read
        assert (
            streaming_io.reads_by_relation
            == factorized_io.reads_by_relation
        )

    def test_dimension_blocks_hold_distinct_rows(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng, n_s=200, n_r=10)
        factorized = FactorizedJoin(tiny_db, spec, block_pages=99)
        (batch,) = list(factorized.batches())
        assert batch.design.dim_blocks[0].shape[0] == 10
        assert batch.design.stored_values < batch.n * batch.design.d

    def test_multiway_matches_reference(self, db, multiway_star):
        reference = nested_loop_join(db, multiway_star.spec)
        factorized = FactorizedJoin(db, multiway_star.spec, block_pages=2)
        got = collect_dense(b.densify() for b in factorized.batches())
        for expected, actual in zip(canonical(reference), canonical(got)):
            np.testing.assert_allclose(expected, actual)


class TestMaterialize:
    def test_table_matches_reference(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng, with_target=True)
        reference = nested_loop_join(tiny_db, spec)
        table = materialize_join(tiny_db, spec, "T", block_pages=2)
        got = collect_dense(
            MaterializedTable(table, block_pages=3).batches()
        )
        for expected, actual in zip(canonical(reference), canonical(got)):
            np.testing.assert_allclose(expected, actual)

    def test_existing_name_rejected(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng)
        materialize_join(tiny_db, spec, "T")
        with pytest.raises(JoinError, match="already exists"):
            materialize_join(tiny_db, spec, "T")

    def test_replace(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng)
        materialize_join(tiny_db, spec, "T")
        table = materialize_join(tiny_db, spec, "T", replace=True)
        assert table.nrows == 300

    def test_materialization_charges_writes(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng)
        tiny_db.reset_stats()
        table = materialize_join(tiny_db, spec, "T")
        assert tiny_db.stats.writes_for("T") == table.npages

    def test_row_order_matches_streaming(self, tiny_db, rng):
        """T preserves the BNL emission order, so M- batches replay the
        same tuple sequence the S-/F- paths produce."""
        spec = make_binary_relations(tiny_db, rng)
        stream_rows = collect_dense(
            StreamingJoin(tiny_db, spec, block_pages=2).batches()
        )
        table = materialize_join(tiny_db, spec, "T", block_pages=2)
        table_rows = collect_dense(
            MaterializedTable(table, block_pages=4).batches()
        )
        np.testing.assert_array_equal(
            stream_rows.sids, table_rows.sids
        )
        np.testing.assert_allclose(
            stream_rows.features, table_rows.features
        )


class TestIOCostFormulas:
    def test_binary_pass_matches_formula(self, tiny_db, rng):
        """Measured BNL I/O = |R| + ceil(|R|/B)·|S| (Section V-A)."""
        spec = make_binary_relations(tiny_db, rng, n_s=400, n_r=30)
        for block_pages in (1, 2, 4, 64):
            tiny_db.reset_stats()
            for _ in StreamingJoin(
                tiny_db, spec, block_pages=block_pages
            ).batches():
                pass
            pages_r = tiny_db["R"].npages
            pages_s = tiny_db["S"].npages
            expected = pages_r + math.ceil(pages_r / block_pages) * pages_s
            assert tiny_db.stats.pages_read == expected

    def test_multiway_pass_io(self, db, multiway_star):
        """Multi-way pass reads |S| + Σ|R_i| pages."""
        db.reset_stats()
        for _ in StreamingJoin(
            db, multiway_star.spec, block_pages=4
        ).batches():
            pass
        resolved = multiway_star.spec.resolve(db)
        expected = resolved.fact.npages + sum(
            d.relation.npages for d in resolved.dimensions
        )
        assert db.stats.pages_read == expected


class TestJoinBlocks:
    def test_invalid_block_pages(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng)
        resolved = spec.resolve(tiny_db)
        with pytest.raises(JoinError):
            list(iter_join_blocks(resolved, block_pages=0))

    def test_blocks_partition_fact_rows(self, tiny_db, rng):
        spec = make_binary_relations(tiny_db, rng, n_s=150)
        resolved = spec.resolve(tiny_db)
        blocks = list(iter_join_blocks(resolved, block_pages=1))
        assert sum(b.n for b in blocks) == 150
