"""I/O accounting counters and snapshots."""

import pytest

from repro.storage.iostats import IOSnapshot, IOStats


class TestIOStats:
    def test_starts_at_zero(self):
        stats = IOStats()
        assert stats.pages_read == 0
        assert stats.pages_written == 0

    def test_record_read_accumulates(self):
        stats = IOStats()
        stats.record_read("R", 3)
        stats.record_read("R", 2)
        assert stats.pages_read == 5
        assert stats.reads_for("R") == 5

    def test_record_write_accumulates(self):
        stats = IOStats()
        stats.record_write("T", 4)
        assert stats.pages_written == 4
        assert stats.writes_for("T") == 4

    def test_reads_tracked_per_relation(self):
        stats = IOStats()
        stats.record_read("R", 1)
        stats.record_read("S", 10)
        assert stats.reads_for("R") == 1
        assert stats.reads_for("S") == 10
        assert stats.reads_for("missing") == 0

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            IOStats().record_read("R", -1)

    def test_negative_write_rejected(self):
        with pytest.raises(ValueError):
            IOStats().record_write("R", -2)

    def test_zero_pages_allowed(self):
        stats = IOStats()
        stats.record_read("R", 0)
        assert stats.pages_read == 0

    def test_reset_clears_everything(self):
        stats = IOStats()
        stats.record_read("R", 3)
        stats.record_write("T", 1)
        stats.reset()
        assert stats.pages_read == 0
        assert stats.pages_written == 0
        assert stats.reads_for("R") == 0


class TestIOSnapshot:
    def test_snapshot_is_immutable_copy(self):
        stats = IOStats()
        stats.record_read("R", 2)
        snap = stats.snapshot()
        stats.record_read("R", 5)
        assert snap.pages_read == 2
        assert snap.reads_by_relation == {"R": 2}

    def test_snapshot_diff(self):
        stats = IOStats()
        stats.record_read("R", 2)
        before = stats.snapshot()
        stats.record_read("R", 3)
        stats.record_write("T", 7)
        delta = stats.snapshot() - before
        assert delta.pages_read == 3
        assert delta.pages_written == 7
        assert delta.reads_by_relation == {"R": 3}
        assert delta.writes_by_relation == {"T": 7}

    def test_diff_drops_zero_entries(self):
        stats = IOStats()
        stats.record_read("R", 2)
        before = stats.snapshot()
        stats.record_read("S", 1)
        delta = stats.snapshot() - before
        assert "R" not in delta.reads_by_relation
        assert delta.reads_by_relation == {"S": 1}

    def test_snapshot_sum_accumulates_deltas(self):
        a = IOSnapshot(
            pages_read=2, pages_written=1,
            reads_by_relation={"R": 2}, writes_by_relation={"T": 1},
        )
        b = IOSnapshot(
            pages_read=3, pages_written=0,
            reads_by_relation={"R": 1, "S": 2},
        )
        total = a + b
        assert total.pages_read == 5
        assert total.pages_written == 1
        assert total.reads_by_relation == {"R": 3, "S": 2}
        assert total.writes_by_relation == {"T": 1}

    def test_sum_with_empty_is_identity(self):
        delta = IOSnapshot(pages_read=4, reads_by_relation={"R": 4})
        total = IOSnapshot() + delta
        assert total.pages_read == 4
        assert total.reads_by_relation == {"R": 4}

    def test_total_pages(self):
        snap = IOSnapshot(pages_read=3, pages_written=4)
        assert snap.total_pages == 7

    def test_empty_snapshot(self):
        snap = IOStats().snapshot()
        assert snap.pages_read == 0
        assert snap.total_pages == 0
