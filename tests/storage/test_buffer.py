"""LRU buffer pool semantics."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStats


@pytest.fixture
def heap(tmp_path, rng):
    stats = IOStats()
    heap = HeapFile.create(
        tmp_path / "b.tbl", 2, page_size_bytes=64, stats=stats
    )  # 4 rows per page
    heap.append(rng.normal(size=(40, 2)))  # 10 pages
    stats.reset()
    return heap


class TestBufferPool:
    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            BufferPool(0)

    def test_miss_then_hit(self, heap):
        pool = BufferPool(4)
        first = pool.get_page(heap, 0)
        second = pool.get_page(heap, 0)
        assert pool.misses == 1
        assert pool.hits == 1
        np.testing.assert_array_equal(first, second)

    def test_hit_does_not_charge_io(self, heap):
        pool = BufferPool(4)
        pool.get_page(heap, 0)
        io_after_miss = heap.stats.pages_read
        pool.get_page(heap, 0)
        assert heap.stats.pages_read == io_after_miss

    def test_eviction_is_lru(self, heap):
        pool = BufferPool(2)
        pool.get_page(heap, 0)
        pool.get_page(heap, 1)
        pool.get_page(heap, 0)  # touch 0 so 1 is LRU
        pool.get_page(heap, 2)  # evicts 1
        pool.get_page(heap, 0)  # still resident
        assert pool.hits == 2
        pool.get_page(heap, 1)  # was evicted -> miss
        assert pool.misses == 4

    def test_capacity_bound(self, heap):
        pool = BufferPool(3)
        for page in range(10):
            pool.get_page(heap, page)
        assert len(pool) == 3

    def test_pages_are_read_only(self, heap):
        pool = BufferPool(2)
        page = pool.get_page(heap, 0)
        with pytest.raises(ValueError):
            page[0, 0] = 99.0

    def test_page_contents_match_direct_read(self, heap):
        pool = BufferPool(2)
        np.testing.assert_array_equal(
            pool.get_page(heap, 3), heap.read_page(3)
        )

    def test_invalidate_drops_only_that_file(self, tmp_path, heap, rng):
        other = HeapFile.create(
            tmp_path / "other.tbl", 2, page_size_bytes=64
        )
        other.append(rng.normal(size=(8, 2)))
        pool = BufferPool(8)
        pool.get_page(heap, 0)
        pool.get_page(other, 0)
        pool.invalidate(heap)
        assert len(pool) == 1
        pool.get_page(other, 0)
        assert pool.hits == 1

    def test_clear_resets_counters(self, heap):
        pool = BufferPool(2)
        pool.get_page(heap, 0)
        pool.get_page(heap, 0)
        pool.clear()
        assert len(pool) == 0
        assert pool.hits == 0
        assert pool.misses == 0
        assert pool.hit_rate == 0.0

    def test_hit_rate(self, heap):
        pool = BufferPool(2)
        pool.get_page(heap, 0)
        pool.get_page(heap, 0)
        pool.get_page(heap, 0)
        assert pool.hit_rate == pytest.approx(2 / 3)
