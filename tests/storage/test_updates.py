"""In-place row updates: heap read-modify-write, catalog events,
buffer-pool invalidation."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.catalog import Database
from repro.storage.events import RowVersionEvent
from repro.storage.heapfile import HeapFile
from repro.storage.schema import Schema, features, key


@pytest.fixture
def heap(tmp_path):
    heap = HeapFile.create(tmp_path / "t.tbl", 3, page_size_bytes=96)
    heap.append(np.arange(30, dtype=np.float64).reshape(10, 3))
    return heap  # 96B pages / 24B rows = 4 rows per page, 3 pages


class TestHeapUpdateRows:
    def test_rows_are_overwritten_in_place(self, heap):
        replacement = np.full((2, 3), -1.0)
        heap.update_rows(np.array([1, 9]), replacement)
        data = heap.read_all()
        np.testing.assert_array_equal(data[1], [-1.0, -1.0, -1.0])
        np.testing.assert_array_equal(data[9], [-1.0, -1.0, -1.0])
        untouched = [i for i in range(10) if i not in (1, 9)]
        np.testing.assert_array_equal(
            data[untouched],
            np.arange(30, dtype=np.float64).reshape(10, 3)[untouched],
        )

    def test_io_charged_per_touched_page(self, heap):
        before = heap.stats.snapshot()
        # rows 0, 1 live on page 0; row 9 on page 2 -> 2 pages touched
        heap.update_rows(np.array([0, 1, 9]), np.zeros((3, 3)))
        delta = heap.stats.snapshot() - before
        assert delta.pages_read == 2
        assert delta.pages_written == 2

    def test_row_count_and_geometry_unchanged(self, heap):
        heap.update_rows(np.array([5]), np.ones((1, 3)))
        assert heap.nrows == 10
        assert heap.npages == 3

    def test_empty_update_is_a_noop(self, heap):
        before = heap.stats.snapshot()
        heap.update_rows(np.zeros(0, dtype=np.int64), np.zeros((0, 3)))
        assert (heap.stats.snapshot() - before).total_pages == 0

    def test_out_of_range_positions_rejected(self, heap):
        with pytest.raises(StorageError, match="positions"):
            heap.update_rows(np.array([10]), np.zeros((1, 3)))
        with pytest.raises(StorageError, match="positions"):
            heap.update_rows(np.array([-1]), np.zeros((1, 3)))

    def test_shape_mismatches_rejected(self, heap):
        with pytest.raises(StorageError, match="rows"):
            heap.update_rows(np.array([0]), np.zeros((1, 4)))
        with pytest.raises(StorageError, match="positions"):
            heap.update_rows(np.array([0, 1]), np.zeros((1, 3)))


@pytest.fixture
def dim_db(tmp_path):
    database = Database(tmp_path / "db", page_size_bytes=128)
    rows = np.column_stack(
        [np.arange(8, dtype=np.float64), np.arange(16).reshape(8, 2)]
    )
    database.create_relation(
        "R", Schema([key("rid"), *features("a", 2)]), rows
    )
    yield database
    database.close(delete=True)


class TestDatabaseUpdateRows:
    def test_event_carries_rids_and_version(self, dim_db):
        rows = dim_db["R"].scan()[[2, 5]]
        rows[:, 1:] += 10.0
        event = dim_db.update_rows("R", np.array([2, 5]), rows)
        assert isinstance(event, RowVersionEvent)
        assert event.relation == "R"
        np.testing.assert_array_equal(event.rids, [2, 5])
        assert event.version == 1
        assert dim_db.row_version("R") == 1

    def test_subscribers_notified_after_the_write(self, dim_db):
        seen = []

        def listener(event):
            # The new values must already be visible to a reader.
            current = dim_db["R"].scan()
            seen.append((event.rids.tolist(), current[3, 1]))

        dim_db.subscribe(listener)
        row = dim_db["R"].scan()[3].copy()
        row[1] = 99.0
        dim_db.update_rows("R", np.array([3]), row[None, :])
        assert seen == [([3], 99.0)]
        dim_db.unsubscribe(listener)
        dim_db.update_rows("R", np.array([3]), row[None, :])
        assert len(seen) == 1

    def test_unsubscribe_missing_listener_is_a_noop(self, dim_db):
        dim_db.unsubscribe(lambda event: None)

    def test_buffer_pool_serves_fresh_pages_after_update(self, dim_db):
        relation = dim_db["R"]
        page_before = dim_db.buffer_pool.get_page(relation.heap, 0).copy()
        row = relation.scan()[0].copy()
        row[1:] = 123.0
        dim_db.update_rows("R", np.array([0]), row[None, :])
        page_after = dim_db.buffer_pool.get_page(relation.heap, 0)
        assert not np.array_equal(page_before, page_after)
        np.testing.assert_array_equal(page_after[0, 1:], [123.0, 123.0])

    def test_key_change_rejected(self, dim_db):
        row = dim_db["R"].scan()[0].copy()
        row[0] = 42.0
        with pytest.raises(StorageError, match="primary-key"):
            dim_db.update_rows("R", np.array([0]), row[None, :])
        assert dim_db.row_version("R") == 0

    def test_out_of_range_positions_raise_storage_error(self, dim_db):
        # Must be a clear StorageError even on keyed relations, where
        # the primary-key check reads pages before the heap layer's
        # own bounds validation would run.
        with pytest.raises(StorageError, match="positions"):
            dim_db.update_rows("R", np.array([8]), np.zeros((1, 3)))
        with pytest.raises(StorageError, match="positions"):
            dim_db.update_rows("R", np.array([-1]), np.zeros((1, 3)))

    def test_database_close_detaches_subscribers(self, tmp_path):
        database = Database(tmp_path / "subdb")
        database.create_relation(
            "R",
            Schema([key("rid"), *features("a", 2)]),
            np.column_stack(
                [np.arange(3, dtype=np.float64), np.zeros((3, 2))]
            ),
        )
        database.subscribe(lambda event: None)
        database.close(delete=True)
        assert database._subscribers == []

    def test_malformed_rows_rejected_before_the_key_check(self, dim_db):
        # Shape problems must surface as shape errors, not as a bogus
        # "primary-key changed" complaint (or a raw IndexError).
        with pytest.raises(StorageError, match="rows"):
            dim_db.update_rows("R", np.array([0]), np.zeros((1, 2)))
        with pytest.raises(StorageError, match="positions"):
            dim_db.update_rows("R", np.array([0, 1]), np.zeros((1, 3)))
        assert dim_db.row_version("R") == 0

    def test_unknown_relation_rejected(self, dim_db):
        with pytest.raises(StorageError, match="no relation"):
            dim_db.update_rows("nope", np.array([0]), np.zeros((1, 3)))
        with pytest.raises(StorageError, match="no relation"):
            dim_db.row_version("nope")

    def test_positions_of_keys_roundtrip(self, dim_db):
        relation = dim_db["R"]
        positions = relation.positions_of_keys(np.array([5, 0, 3]))
        np.testing.assert_array_equal(
            relation.scan()[positions][:, 0], [5.0, 0.0, 3.0]
        )

    def test_keyless_relation_events_use_positions(self, dim_db):
        rows = np.arange(6, dtype=np.float64).reshape(3, 2)
        dim_db.create_relation("F", Schema(features("x", 2)), rows)
        event = dim_db.update_rows(
            "F", np.array([1]), np.zeros((1, 2))
        )
        np.testing.assert_array_equal(event.rids, [1])
