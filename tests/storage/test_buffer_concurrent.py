"""Buffer-pool in-flight guards: parallel cold reads, single-flight
coalescing, and invalidation racing an in-flight read.
"""

import threading
import time

import numpy as np
import pytest

from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStats


class GatedHeap(HeapFile):
    """A heap file whose page reads block until the test releases them.

    The gate sits *before* the real read (and before the heap's I/O
    lock), so several gated readers genuinely hold in-flight guards at
    once — the situation the pool must now allow.
    """

    def arm_gate(self):
        self.entered: list[int] = []
        self._entered_lock = threading.Lock()
        self.release_gate = threading.Event()
        self._armed = True

    def read_page(self, page_no):
        if getattr(self, "_armed", False):
            with self._entered_lock:
                self.entered.append(page_no)
            assert self.release_gate.wait(timeout=10.0)
        return super().read_page(page_no)


@pytest.fixture
def gated(tmp_path, rng):
    stats = IOStats()
    heap = GatedHeap.create(
        tmp_path / "g.tbl", 2, page_size_bytes=64, stats=stats
    )  # 4 rows per page
    heap.append(rng.normal(size=(40, 2)))  # 10 pages
    stats.reset()
    return heap


def spin_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:  # pragma: no cover - failure aid
            raise AssertionError("condition never became true")
        time.sleep(0.001)


class TestParallelColdReads:
    def test_distinct_pages_read_concurrently(self, gated):
        pool = BufferPool(8)
        gated.arm_gate()
        results = {}

        def read(page_no):
            results[page_no] = pool.get_page(gated, page_no)

        threads = [
            threading.Thread(target=read, args=(p,)) for p in range(3)
        ]
        for thread in threads:
            thread.start()
        # All three cold misses enter their disk read together — the
        # old pool held one lock across the read and peaked at 1.
        spin_until(lambda: len(gated.entered) == 3)
        assert pool.inflight_peak == 3
        gated.release_gate.set()
        for thread in threads:
            thread.join()
        gated._armed = False
        for page_no in range(3):
            np.testing.assert_array_equal(
                results[page_no], gated.read_page(page_no)
            )
        assert pool.misses == 3

    def test_same_page_is_single_flight(self, gated):
        pool = BufferPool(8)
        gated.arm_gate()
        results = []

        leader = threading.Thread(
            target=lambda: results.append(pool.get_page(gated, 0))
        )
        leader.start()
        spin_until(lambda: len(gated.entered) == 1)
        # The leader is parked inside its read, guard installed: this
        # second reader must coalesce rather than read again.
        follower = threading.Thread(
            target=lambda: results.append(pool.get_page(gated, 0))
        )
        follower.start()
        gated.release_gate.set()
        leader.join()
        follower.join()
        gated._armed = False
        np.testing.assert_array_equal(results[0], results[1])
        assert gated.stats.pages_read == 1      # one disk read total
        assert pool.misses == 1
        assert pool.hits == 1
        assert pool.coalesced_reads == 1

    def test_failed_leader_does_not_poison_followers(self, tmp_path, rng):
        class FlakyHeap(HeapFile):
            fail_once = True

            def read_page(self, page_no):
                if FlakyHeap.fail_once:
                    FlakyHeap.fail_once = False
                    raise OSError("transient read failure")
                return super().read_page(page_no)

        heap = FlakyHeap.create(tmp_path / "f.tbl", 2, page_size_bytes=64)
        heap.append(rng.normal(size=(8, 2)))
        pool = BufferPool(4)
        with pytest.raises(OSError):
            pool.get_page(heap, 0)
        # The guard was cleaned up: the next reader retries fresh.
        np.testing.assert_array_equal(
            pool.get_page(heap, 0), heap.read_page(0)
        )


class InnerGatedHeap(HeapFile):
    """Gates *inside* the heap's I/O lock (unlike :class:`GatedHeap`),
    so overlap here proves the readers-writer lock actually shares."""

    def arm_gate(self):
        self.entered: list[int] = []
        self._entered_lock = threading.Lock()
        self.release_gate = threading.Event()
        self._armed = True

    def _read_row_range_unlocked(self, start, stop):
        if getattr(self, "_armed", False):
            with self._entered_lock:
                self.entered.append(start)
            assert self.release_gate.wait(timeout=10.0)
        return super()._read_row_range_unlocked(start, stop)


class TestHeapReadWriteLock:
    def test_reads_of_one_heap_share_the_io_lock(self, tmp_path, rng):
        heap = InnerGatedHeap.create(
            tmp_path / "rw.tbl", 2, page_size_bytes=64
        )
        data = rng.normal(size=(8, 2))
        heap.append(data)
        heap.arm_gate()
        results = {}

        def read(page_no):
            results[page_no] = heap.read_page(page_no)

        threads = [
            threading.Thread(target=read, args=(p,)) for p in range(2)
        ]
        for thread in threads:
            thread.start()
        # Both reads hold the I/O lock (shared) at once — the old
        # mutex design let exactly one in.
        spin_until(lambda: len(heap.entered) == 2)
        heap.release_gate.set()
        for thread in threads:
            thread.join()
        heap._armed = False
        np.testing.assert_array_equal(results[0], data[:4])
        np.testing.assert_array_equal(results[1], data[4:])

    def test_writer_excludes_in_flight_readers(self, tmp_path, rng):
        heap = InnerGatedHeap.create(
            tmp_path / "rw2.tbl", 2, page_size_bytes=64
        )
        heap.append(rng.normal(size=(4, 2)))
        heap.arm_gate()
        reader = threading.Thread(target=lambda: heap.read_page(0))
        reader.start()
        spin_until(lambda: len(heap.entered) == 1)
        wrote = threading.Event()

        def update():
            heap.update_rows(np.arange(4), np.full((4, 2), 1.25))
            wrote.set()

        writer = threading.Thread(target=update)
        writer.start()
        # The update must wait for the in-flight read (torn-page
        # protection) ...
        time.sleep(0.05)
        assert not wrote.is_set()
        heap.release_gate.set()
        heap._armed = False
        writer.join()
        reader.join()
        # ... and land once the reader drains.
        assert wrote.is_set()
        np.testing.assert_array_equal(
            heap.read_page(0), np.full((4, 2), 1.25)
        )


class TestInvalidationRaces:
    def test_inflight_read_never_caches_stale_bytes(self, gated):
        pool = BufferPool(8)
        gated.arm_gate()
        stale_result = []

        reader = threading.Thread(
            target=lambda: stale_result.append(pool.get_page(gated, 0))
        )
        reader.start()
        spin_until(lambda: len(gated.entered) == 1)
        # While the read is in flight: update the page in place, then
        # invalidate — the exact Database.update_rows cycle.
        gated._armed = False
        new_rows = np.full((4, 2), 7.5)
        gated.update_rows(np.arange(4), new_rows)
        pool.invalidate_pages(gated, [0])
        gated.release_gate.set()
        reader.join()
        # The racing read must not have cached whatever it saw...
        assert pool.stale_discards == 1
        assert len(pool) == 0
        # ...so a read issued after the invalidation sees the update.
        np.testing.assert_array_equal(pool.get_page(gated, 0), new_rows)

    def test_reader_after_invalidate_never_joins_stale_guard(self, gated):
        pool = BufferPool(8)
        gated.arm_gate()
        first = []
        reader = threading.Thread(
            target=lambda: first.append(pool.get_page(gated, 0))
        )
        reader.start()
        spin_until(lambda: len(gated.entered) == 1)
        gated._armed = False
        new_rows = np.full((4, 2), 3.25)
        gated.update_rows(np.arange(4), new_rows)
        pool.invalidate_pages(gated, [0])
        # This get_page starts after invalidate returned: it must read
        # fresh bytes itself, not piggyback on the stale in-flight read
        # (which is still parked on the gate).
        fresh = pool.get_page(gated, 0)
        np.testing.assert_array_equal(fresh, new_rows)
        gated.release_gate.set()
        reader.join()
        # And the parked read's completion did not clobber the cache.
        np.testing.assert_array_equal(pool.get_page(gated, 0), new_rows)

    def test_threaded_update_invalidate_stress(self, tmp_path):
        heap = HeapFile.create(tmp_path / "s.tbl", 2, page_size_bytes=64)
        heap.append(np.zeros((4, 2)))           # one page, value 0
        pool = BufferPool(4)
        published = [0]
        stop = threading.Event()
        errors = []

        def writer():
            try:
                for version in range(1, 60):
                    heap.update_rows(
                        np.arange(4), np.full((4, 2), float(version))
                    )
                    pool.invalidate_pages(heap, [0])
                    published[0] = version
                    time.sleep(0.0005)
            except Exception as error:  # pragma: no cover
                errors.append(error)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    floor = published[0]
                    page = np.asarray(pool.get_page(heap, 0))
                    # Pages are written whole: a read must never be
                    # torn, and never older than the last published
                    # (written + invalidated) version.
                    assert page.min() == page.max(), f"torn page: {page}"
                    assert page.min() >= floor, (
                        f"stale page {page.min()} after invalidation "
                        f"of version {floor}"
                    )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
