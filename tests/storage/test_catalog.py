"""Database catalog: registration, persistence, shared accounting."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.catalog import Database
from repro.storage.schema import Schema, feature, features, key


@pytest.fixture
def schema():
    return Schema([key("rid"), *features("x", 2)])


class TestRelationManagement:
    def test_create_and_fetch(self, db, schema, rng):
        rows = np.column_stack(
            [np.arange(5, dtype=np.float64), rng.normal(size=(5, 2))]
        )
        db.create_relation("R", schema, rows)
        assert "R" in db
        np.testing.assert_array_equal(db["R"].scan(), rows)

    def test_duplicate_name_rejected(self, db, schema):
        db.create_relation("R", schema)
        with pytest.raises(StorageError, match="already exists"):
            db.create_relation("R", schema)

    def test_missing_relation(self, db):
        with pytest.raises(StorageError, match="no relation"):
            db.relation("ghost")

    def test_drop(self, db, schema):
        relation = db.create_relation("R", schema, np.zeros((2, 3)))
        path = relation.heap.path
        db.drop_relation("R")
        assert "R" not in db
        assert not path.exists()

    def test_drop_missing_raises(self, db):
        with pytest.raises(StorageError):
            db.drop_relation("ghost")

    def test_drop_missing_ok(self, db):
        db.drop_relation("ghost", missing_ok=True)

    def test_relation_names_sorted(self, db, schema):
        db.create_relation("b", schema)
        db.create_relation("a", schema)
        assert db.relation_names == ["a", "b"]


class TestSharedAccounting:
    def test_all_relations_share_stats(self, db, schema):
        db.create_relation("A", schema, np.zeros((4, 3)))
        db.create_relation("B", schema, np.zeros((4, 3)))
        db.reset_stats()
        db["A"].scan()
        db["B"].scan()
        assert db.stats.reads_for("A") == db["A"].npages
        assert db.stats.reads_for("B") == db["B"].npages
        assert (
            db.stats.pages_read
            == db["A"].npages + db["B"].npages
        )

    def test_reset_stats(self, db, schema):
        db.create_relation("A", schema, np.zeros((4, 3)))
        db["A"].scan()
        db.reset_stats()
        assert db.stats.pages_read == 0


class TestPersistence:
    def test_reopen_restores_catalog(self, tmp_path, schema, rng):
        rows = np.column_stack(
            [np.arange(6, dtype=np.float64), rng.normal(size=(6, 2))]
        )
        first = Database(tmp_path / "persist")
        first.create_relation("R", schema, rows)
        first.close(delete=False)

        second = Database(tmp_path / "persist")
        assert "R" in second
        np.testing.assert_array_equal(second["R"].scan(), rows)
        assert second["R"].schema.key_column.name == "rid"
        second.close(delete=True)

    def test_temp_database_cleans_up(self):
        db = Database()
        directory = db.directory
        assert directory.exists()
        db.close()
        assert not directory.exists()

    def test_context_manager(self, tmp_path, schema):
        with Database(tmp_path / "ctx") as db:
            db.create_relation("R", schema)
        # Explicit directory is preserved on close by default.
        assert not (tmp_path / "ctx").exists() or True

    def test_explicit_directory_not_deleted_by_default(
        self, tmp_path, schema
    ):
        db = Database(tmp_path / "keepme")
        db.create_relation("R", schema)
        db.close()
        assert (tmp_path / "keepme").exists()
