"""Relations: schema-aware projections over heap files."""

import numpy as np
import pytest

from repro.errors import SchemaError, StorageError
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation
from repro.storage.schema import (
    ColumnRole,
    Schema,
    feature,
    features,
    foreign_key,
    key,
    target,
)


@pytest.fixture
def schema():
    return Schema(
        [key("sid"), target("y"), *features("x", 2), foreign_key("fk", "R")]
    )


@pytest.fixture
def rows(rng):
    n = 50
    return np.column_stack(
        [
            np.arange(n, dtype=np.float64),
            rng.normal(size=n),
            rng.normal(size=(n, 2)),
            rng.integers(0, 7, size=n).astype(np.float64),
        ]
    )


@pytest.fixture
def relation(tmp_path, schema, rows):
    return Relation.create(
        "S", schema, tmp_path, rows, page_size_bytes=256, stats=IOStats()
    )


class TestCreation:
    def test_len_and_pages(self, relation, rows):
        assert len(relation) == rows.shape[0]
        assert relation.npages == relation.heap.npages > 1

    def test_width_mismatch_rejected(self, tmp_path, schema):
        with pytest.raises(StorageError, match="must be"):
            Relation.create("bad", schema, tmp_path, np.zeros((3, 2)))

    def test_heap_schema_width_mismatch(self, tmp_path, schema, rows):
        relation = Relation.create("S2", schema, tmp_path, rows)
        with pytest.raises(SchemaError, match="width"):
            Relation("S2", Schema([feature("only")]), relation.heap)

    def test_append_validates_width(self, relation):
        with pytest.raises(StorageError):
            relation.append(np.zeros((2, 3)))

    def test_drop_deletes_file(self, relation):
        relation.drop()
        assert not relation.heap.path.exists()


class TestProjections:
    def test_scan_round_trips(self, relation, rows):
        np.testing.assert_array_equal(relation.scan(), rows)

    def test_keys_are_int(self, relation, rows):
        keys = relation.keys()
        assert keys.dtype == np.int64
        np.testing.assert_array_equal(keys, rows[:, 0].astype(np.int64))

    def test_targets(self, relation, rows):
        np.testing.assert_array_equal(relation.targets(), rows[:, 1])

    def test_features_in_schema_order(self, relation, rows):
        np.testing.assert_array_equal(relation.features(), rows[:, 2:4])

    def test_foreign_keys(self, relation, rows):
        fks = relation.foreign_keys_of("R")
        assert fks.dtype == np.int64
        np.testing.assert_array_equal(fks, rows[:, 4].astype(np.int64))

    def test_foreign_keys_sole_fk_inferred(self, relation, rows):
        np.testing.assert_array_equal(
            relation.foreign_keys_of(), rows[:, 4].astype(np.int64)
        )

    def test_project_on_in_memory_rows(self, relation, rows):
        block = rows[10:20]
        np.testing.assert_array_equal(
            relation.project_features(block), block[:, 2:4]
        )
        np.testing.assert_array_equal(
            relation.project_keys(block), block[:, 0].astype(np.int64)
        )
        np.testing.assert_array_equal(
            relation.project_targets(block), block[:, 1]
        )

    def test_has_role(self, relation):
        assert relation.has_role(ColumnRole.TARGET)
        assert relation.has_role(ColumnRole.FOREIGN_KEY)

    def test_iter_blocks_covers_relation(self, relation, rows):
        blocks = list(relation.iter_blocks(2))
        np.testing.assert_array_equal(np.vstack(blocks), rows)


class TestIOCharging:
    def test_scan_charges_all_pages(self, relation):
        before = relation.heap.stats.pages_read
        relation.scan()
        assert (
            relation.heap.stats.pages_read - before == relation.npages
        )

    def test_projection_charges_full_scan(self, relation):
        # Column projections read the whole relation: row storage has
        # no column pruning (same as the paper's setting).
        before = relation.heap.stats.pages_read
        relation.keys()
        assert (
            relation.heap.stats.pages_read - before == relation.npages
        )
