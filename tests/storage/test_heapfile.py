"""Paged heap files: geometry, round-trips, I/O accounting."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.heapfile import HeapFile, rows_per_page
from repro.storage.iostats import IOStats


class TestRowsPerPage:
    def test_basic(self):
        # 256-byte pages, 4-column float64 rows -> 8 rows per page.
        assert rows_per_page(4, 256) == 8

    def test_wide_row_still_gets_a_page(self):
        assert rows_per_page(1000, 256) == 1

    def test_invalid_ncols(self):
        with pytest.raises(StorageError):
            rows_per_page(0, 256)

    def test_invalid_page_size(self):
        with pytest.raises(StorageError):
            rows_per_page(4, 0)


@pytest.fixture
def heap(tmp_path):
    stats = IOStats()
    return HeapFile.create(
        tmp_path / "t.tbl", 4, page_size_bytes=256, stats=stats
    )


class TestGeometry:
    def test_empty_file(self, heap):
        assert heap.nrows == 0
        assert heap.npages == 0
        assert heap.read_all().shape == (0, 4)

    def test_page_count_rounds_up(self, heap):
        heap.append(np.zeros((9, 4)))  # 8 rows/page -> 2 pages
        assert heap.npages == 2
        assert heap.nrows == 9

    def test_exact_page_boundary(self, heap):
        heap.append(np.zeros((16, 4)))
        assert heap.npages == 2


class TestAppendAndRead:
    def test_round_trip(self, heap, rng):
        data = rng.normal(size=(20, 4))
        heap.append(data)
        np.testing.assert_array_equal(heap.read_all(), data)

    def test_multiple_appends_concatenate(self, heap, rng):
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(7, 4))
        heap.append(a)
        heap.append(b)
        np.testing.assert_array_equal(heap.read_all(), np.vstack([a, b]))

    def test_read_single_page(self, heap, rng):
        data = rng.normal(size=(20, 4))
        heap.append(data)
        np.testing.assert_array_equal(heap.read_page(1), data[8:16])

    def test_last_page_may_be_short(self, heap, rng):
        data = rng.normal(size=(10, 4))
        heap.append(data)
        assert heap.read_page(1).shape == (2, 4)

    def test_read_pages_range(self, heap, rng):
        data = rng.normal(size=(20, 4))
        heap.append(data)
        np.testing.assert_array_equal(heap.read_pages(1, 2), data[8:20])

    def test_read_pages_clips_at_end(self, heap, rng):
        data = rng.normal(size=(10, 4))
        heap.append(data)
        assert heap.read_pages(0, 99).shape == (10, 4)

    def test_read_zero_pages(self, heap):
        heap.append(np.zeros((4, 4)))
        assert heap.read_pages(0, 0).shape == (0, 4)

    def test_page_out_of_range(self, heap):
        heap.append(np.zeros((4, 4)))
        with pytest.raises(StorageError, match="out of range"):
            heap.read_page(5)

    def test_iter_pages_covers_all_rows(self, heap, rng):
        data = rng.normal(size=(19, 4))
        heap.append(data)
        pages = list(heap.iter_pages())
        assert len(pages) == heap.npages
        np.testing.assert_array_equal(np.vstack(pages), data)

    def test_iter_page_blocks(self, heap, rng):
        data = rng.normal(size=(33, 4))
        heap.append(data)
        blocks = list(heap.iter_page_blocks(2))
        assert len(blocks) == 3  # 5 pages in blocks of 2
        np.testing.assert_array_equal(np.vstack(blocks), data)

    def test_iter_page_blocks_invalid(self, heap):
        with pytest.raises(StorageError):
            list(heap.iter_page_blocks(0))

    def test_wrong_width_rejected(self, heap):
        with pytest.raises(StorageError, match="width"):
            heap.append(np.zeros((3, 5)))

    def test_one_dim_rejected(self, heap):
        with pytest.raises(StorageError):
            heap.append(np.zeros(4))

    def test_empty_append_is_noop(self, heap):
        heap.append(np.zeros((0, 4)))
        assert heap.nrows == 0
        assert heap.stats.pages_written == 0


class TestIOAccounting:
    def test_append_counts_pages_written(self, heap):
        heap.append(np.zeros((16, 4)))  # 2 full pages
        assert heap.stats.pages_written == 2

    def test_read_page_counts_one(self, heap):
        heap.append(np.zeros((16, 4)))
        before = heap.stats.pages_read
        heap.read_page(0)
        assert heap.stats.pages_read == before + 1

    def test_read_all_counts_every_page(self, heap):
        heap.append(np.zeros((20, 4)))  # 3 pages
        before = heap.stats.pages_read
        heap.read_all()
        assert heap.stats.pages_read == before + 3

    def test_partial_page_rewrite_charged(self, heap):
        heap.append(np.zeros((4, 4)))   # half a page
        heap.append(np.zeros((4, 4)))   # completes the same page
        # 1 page for first append + 1 page (read-modify-write) second.
        assert heap.stats.pages_written == 2


class TestPersistence:
    def test_reopen_preserves_rows(self, tmp_path, rng):
        stats = IOStats()
        heap = HeapFile.create(
            tmp_path / "p.tbl", 3, page_size_bytes=256, stats=stats
        )
        data = rng.normal(size=(10, 3))
        heap.append(data)
        reopened = HeapFile.open(tmp_path / "p.tbl", stats=stats)
        assert reopened.nrows == 10
        assert reopened.ncols == 3
        np.testing.assert_array_equal(reopened.read_all(), data)

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(StorageError, match="metadata"):
            HeapFile.open(tmp_path / "missing.tbl")

    def test_delete_removes_files(self, tmp_path):
        heap = HeapFile.create(tmp_path / "d.tbl", 2)
        heap.append(np.zeros((2, 2)))
        heap.delete()
        assert not heap.path.exists()
        assert not heap.meta_path.exists()
        assert heap.nrows == 0
