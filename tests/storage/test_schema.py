"""Schema construction, validation, and role accessors."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import (
    Column,
    ColumnRole,
    Schema,
    feature,
    features,
    foreign_key,
    key,
    target,
)


class TestColumn:
    def test_defaults_to_feature(self):
        assert Column("x").role is ColumnRole.FEATURE

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_fk_requires_references(self):
        with pytest.raises(SchemaError, match="must name the relation"):
            Column("fk", ColumnRole.FOREIGN_KEY)

    def test_non_fk_rejects_references(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnRole.FEATURE, references="R")

    def test_helpers(self):
        assert key("rid").role is ColumnRole.KEY
        assert target("y").role is ColumnRole.TARGET
        assert feature("x").role is ColumnRole.FEATURE
        fk = foreign_key("fk", "R")
        assert fk.role is ColumnRole.FOREIGN_KEY
        assert fk.references == "R"

    def test_features_helper_generates_named_columns(self):
        cols = features("x", 3)
        assert [c.name for c in cols] == ["x0", "x1", "x2"]
        assert all(c.role is ColumnRole.FEATURE for c in cols)

    def test_features_helper_rejects_negative(self):
        with pytest.raises(SchemaError):
            features("x", -1)

    def test_features_helper_zero_is_empty(self):
        assert features("x", 0) == []


class TestSchemaValidation:
    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([feature("x"), feature("x")])

    def test_two_keys_rejected(self):
        with pytest.raises(SchemaError, match="KEY"):
            Schema([key("a"), key("b")])

    def test_two_targets_rejected(self):
        with pytest.raises(SchemaError, match="TARGET"):
            Schema([target("y"), target("z")])

    def test_multiple_fks_allowed(self):
        schema = Schema(
            [key("sid"), foreign_key("f1", "R1"), foreign_key("f2", "R2")]
        )
        assert len(schema.foreign_keys) == 2


class TestSchemaAccessors:
    @pytest.fixture
    def schema(self):
        return Schema(
            [
                key("sid"),
                target("y"),
                feature("x0"),
                feature("x1"),
                foreign_key("fk", "R"),
            ]
        )

    def test_width(self, schema):
        assert schema.width == 5
        assert len(schema) == 5

    def test_positions(self, schema):
        assert schema.position("sid") == 0
        assert schema.position("fk") == 4

    def test_position_of_missing_column(self, schema):
        with pytest.raises(SchemaError, match="no column"):
            schema.position("nope")

    def test_contains(self, schema):
        assert "x0" in schema
        assert "zzz" not in schema

    def test_key_accessors(self, schema):
        assert schema.key_column.name == "sid"
        assert schema.key_position == 0

    def test_target_accessors(self, schema):
        assert schema.target_column.name == "y"
        assert schema.target_position == 1

    def test_feature_accessors(self, schema):
        assert schema.feature_names == ("x0", "x1")
        assert schema.num_features == 2
        assert schema.feature_positions == (2, 3)

    def test_fk_position_sole(self, schema):
        assert schema.fk_position() == 4
        assert schema.fk_position("R") == 4

    def test_fk_position_wrong_reference(self, schema):
        with pytest.raises(SchemaError, match="no foreign key"):
            schema.fk_position("OTHER")

    def test_fk_position_ambiguous(self):
        schema = Schema(
            [foreign_key("f1", "R1"), foreign_key("f2", "R2"), feature("x")]
        )
        with pytest.raises(SchemaError, match="exactly one"):
            schema.fk_position()
        assert schema.fk_position("R2") == 1

    def test_missing_key_raises(self):
        schema = Schema([feature("x")])
        assert schema.key_column is None
        with pytest.raises(SchemaError):
            _ = schema.key_position

    def test_missing_target_raises(self):
        schema = Schema([feature("x")])
        assert schema.target_column is None
        with pytest.raises(SchemaError):
            _ = schema.target_position


class TestSchemaSerialization:
    def test_round_trip(self):
        schema = Schema(
            [key("rid"), feature("a"), foreign_key("fk", "Other"), target("y")]
        )
        restored = Schema.from_dict(schema.to_dict())
        assert restored == schema
        assert restored.column("fk").references == "Other"

    def test_round_trip_preserves_order(self):
        schema = Schema([feature("b"), feature("a"), feature("c")])
        restored = Schema.from_dict(schema.to_dict())
        assert restored.feature_names == ("b", "a", "c")
