"""The synthetic star-schema generator (Section VII-A setup)."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DimensionSpec,
    StarSchemaConfig,
    generate_star,
)
from repro.errors import ModelError
from repro.join.reference import nested_loop_join


class TestConfigValidation:
    def test_binary_helper(self):
        config = StarSchemaConfig.binary(
            n_s=100, n_r=10, d_s=3, d_r=4
        )
        assert config.num_dimensions_ok if hasattr(
            config, "num_dimensions_ok"
        ) else True
        assert config.dimensions[0].n_rows == 10
        assert config.tuple_ratio == 10.0

    def test_invalid_ns(self):
        with pytest.raises(ModelError):
            StarSchemaConfig.binary(n_s=0, n_r=10, d_s=3, d_r=4)

    def test_needs_dimensions(self):
        with pytest.raises(ModelError):
            StarSchemaConfig(n_s=10, d_s=2, dimensions=())

    def test_invalid_noise(self):
        with pytest.raises(ModelError):
            StarSchemaConfig.binary(
                n_s=10, n_r=5, d_s=2, d_r=2, noise=-1.0
            )

    def test_invalid_dimension_spec(self):
        with pytest.raises(ModelError):
            DimensionSpec(0, 3)


class TestGeneratedShapes:
    def test_binary_cardinalities(self, db):
        config = StarSchemaConfig.binary(
            n_s=150, n_r=12, d_s=3, d_r=5, seed=1
        )
        star = generate_star(db, config)
        assert db[star.fact_name].nrows == 150
        assert db[star.dimension_names[0]].nrows == 12
        assert db[star.fact_name].schema.num_features == 3
        assert db[star.dimension_names[0]].schema.num_features == 5

    def test_multiway_spec_arity(self, db):
        config = StarSchemaConfig(
            n_s=100,
            d_s=2,
            dimensions=(DimensionSpec(5, 2), DimensionSpec(7, 3)),
            seed=2,
        )
        star = generate_star(db, config)
        assert star.spec.num_dimensions == 2
        resolved = star.spec.resolve(db)
        assert resolved.total_features == 7

    def test_join_integrity(self, db):
        config = StarSchemaConfig.binary(
            n_s=200, n_r=15, d_s=2, d_r=3, seed=3
        )
        star = generate_star(db, config)
        star.spec.resolve(db).check_integrity()

    def test_every_key_referenced_when_ns_exceeds_nr(self, db):
        config = StarSchemaConfig.binary(
            n_s=100, n_r=20, d_s=2, d_r=2, seed=4
        )
        star = generate_star(db, config)
        fks = db[star.fact_name].foreign_keys_of()
        assert set(np.unique(fks)) == set(range(20))

    def test_duplicate_names_rejected(self, db):
        config = StarSchemaConfig.binary(n_s=10, n_r=5, d_s=2, d_r=2)
        generate_star(db, config)
        with pytest.raises(ModelError, match="exists"):
            generate_star(db, config)

    def test_determinism(self, db, tmp_path):
        from repro.storage.catalog import Database

        config = StarSchemaConfig.binary(
            n_s=50, n_r=8, d_s=2, d_r=2, seed=42
        )
        star_a = generate_star(db, config)
        other = Database(tmp_path / "other")
        star_b = generate_star(other, config)
        np.testing.assert_array_equal(
            db[star_a.fact_name].scan(), other[star_b.fact_name].scan()
        )
        other.close(delete=True)


class TestTargets:
    def test_target_present_when_requested(self, db):
        config = StarSchemaConfig.binary(
            n_s=100, n_r=10, d_s=2, d_r=2, with_target=True, seed=5
        )
        star = generate_star(db, config)
        schema = db[star.fact_name].schema
        assert schema.target_column is not None
        assert star.true_weights is not None
        assert star.true_weights.shape == (4,)

    def test_target_depends_on_dimension_features(self, db):
        """The target must need the join: shuffling the dimension side
        of the signal changes it."""
        config = StarSchemaConfig.binary(
            n_s=400, n_r=10, d_s=2, d_r=4, with_target=True, noise=0.0,
            seed=6,
        )
        star = generate_star(db, config)
        joined = nested_loop_join(db, star.spec)
        signal = joined.features @ star.true_weights
        expected = np.sin(signal) + 0.1 * signal
        np.testing.assert_allclose(joined.targets, expected, atol=1e-9)
        # Dimension features carry nonzero weight.
        assert np.abs(star.true_weights[2:]).max() > 0.01

    def test_no_target_by_default(self, db):
        config = StarSchemaConfig.binary(
            n_s=50, n_r=5, d_s=2, d_r=2, seed=7
        )
        star = generate_star(db, config)
        assert db[star.fact_name].schema.target_column is None


class TestSkew:
    def test_zipf_skew_concentrates_mass(self, db):
        config = StarSchemaConfig.binary(
            n_s=2000, n_r=50, d_s=2, d_r=2, fk_skew=1.5, seed=8
        )
        star = generate_star(db, config)
        fks = db[star.fact_name].foreign_keys_of()
        counts = np.bincount(fks, minlength=50)
        # Top key much more popular than the median key.
        assert counts.max() > 5 * np.median(counts)

    def test_mixture_features_have_cluster_structure(self, db):
        config = StarSchemaConfig.binary(
            n_s=2000, n_r=10, d_s=4, d_r=2, n_clusters=3,
            cluster_spread=10.0, noise=0.0, seed=9,
        )
        star = generate_star(db, config)
        feats = db[star.fact_name].features()
        # Variance across rows far exceeds within-cluster variance (~1):
        # evidence of multi-modal structure.
        assert feats.var(axis=0).max() > 5.0
