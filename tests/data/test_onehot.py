"""One-hot encoding utilities."""

import numpy as np
import pytest

from repro.data.onehot import one_hot_encode, random_categoricals, split_width
from repro.errors import ModelError


class TestOneHotEncode:
    def test_single_column(self):
        out = one_hot_encode(np.array([0, 2, 1]), [3])
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_multi_column_blocks(self):
        data = np.array([[0, 1], [1, 0]])
        out = one_hot_encode(data, [2, 2])
        np.testing.assert_array_equal(
            out, [[1, 0, 0, 1], [0, 1, 1, 0]]
        )

    def test_one_dim_promoted(self):
        assert one_hot_encode(np.array([0, 1])).shape == (2, 2)

    def test_cardinalities_inferred(self):
        out = one_hot_encode(np.array([[0], [4]]))
        assert out.shape == (2, 5)

    def test_each_row_one_hot_per_column(self, rng):
        data = rng.integers(0, 5, size=(40, 3))
        out = one_hot_encode(data, [5, 5, 5])
        np.testing.assert_array_equal(out.sum(axis=1), 3.0)

    def test_float_integers_accepted(self):
        out = one_hot_encode(np.array([[0.0], [1.0]]), [2])
        assert out.shape == (2, 2)

    def test_non_integer_rejected(self):
        with pytest.raises(ModelError, match="integers"):
            one_hot_encode(np.array([[0.5]]))

    def test_negative_rejected(self):
        with pytest.raises(ModelError, match="non-negative"):
            one_hot_encode(np.array([[-1]]))

    def test_code_exceeding_cardinality(self):
        with pytest.raises(ModelError, match="cardinality"):
            one_hot_encode(np.array([[3]]), [3])

    def test_cardinality_count_mismatch(self):
        with pytest.raises(ModelError):
            one_hot_encode(np.array([[0, 0]]), [2])


class TestSplitWidth:
    def test_exact_partition(self):
        assert split_width(126, 3) == [42, 42, 42]

    def test_remainder_distributed(self):
        assert split_width(10, 3) == [4, 3, 3]
        assert sum(split_width(175, 3)) == 175

    def test_invalid(self):
        with pytest.raises(ModelError):
            split_width(2, 3)
        with pytest.raises(ModelError):
            split_width(5, 0)


class TestRandomCategoricals:
    def test_all_categories_present(self, rng):
        codes = random_categoricals(rng, 100, [5, 7])
        assert set(np.unique(codes[:, 0])) == set(range(5))
        assert set(np.unique(codes[:, 1])) == set(range(7))

    def test_shape(self, rng):
        assert random_categoricals(rng, 10, [3]).shape == (10, 1)
