"""Simulated Hamlet datasets match the published Table IV/V dimensions."""

import numpy as np
import pytest

from repro.data.hamlet import (
    HAMLET_PROFILES,
    MOVIES_3WAY,
    load_hamlet,
    load_movies_3way,
)
from repro.errors import ModelError


class TestProfiles:
    def test_table_iv_dimensions(self):
        """The published (n_S, d_S, n_R, d_R) of Table IV."""
        expected = {
            "expedia1": (942142, 7, 11938, 8),
            "expedia2": (942142, 7, 37021, 14),
            "walmart": (421570, 3, 2340, 9),
            "movies": (1000209, 1, 3706, 21),
            "walmart_sparse": (421570, 126, 2340, 175),
            "movies_sparse": (1000209, 1, 3706, 21),
        }
        for name, dims in expected.items():
            profile = HAMLET_PROFILES[name]
            assert (
                profile.n_s, profile.d_s, profile.n_r, profile.d_r
            ) == dims

    def test_table_v_dimensions(self):
        expected = {
            "expedia3": (634133, 7, 2899, 29),
            "expedia4": (634133, 7, 2899, 78),
            "expedia5": (634133, 7, 2899, 218),
        }
        for name, dims in expected.items():
            profile = HAMLET_PROFILES[name]
            assert (
                profile.n_s, profile.d_s, profile.n_r, profile.d_r
            ) == dims

    def test_unknown_profile(self, db):
        with pytest.raises(ModelError, match="unknown"):
            load_hamlet(db, "netflix")

    def test_invalid_scale(self, db):
        with pytest.raises(ModelError):
            load_hamlet(db, "walmart", scale=0)


class TestScaledLoading:
    @pytest.mark.parametrize("name", ["walmart", "expedia3"])
    def test_scaled_dimensions(self, db, name):
        profile = HAMLET_PROFILES[name]
        star = load_hamlet(db, name, scale=0.01, seed=1)
        fact = db[star.fact_name]
        dim = db[star.dimension_names[0]]
        assert fact.nrows == max(8, round(profile.n_s * 0.01))
        assert dim.nrows == max(8, round(profile.n_r * 0.01))
        assert fact.schema.num_features == profile.d_s
        assert dim.schema.num_features == profile.d_r

    def test_tuple_ratio_preserved_by_scaling(self, db):
        profile = HAMLET_PROFILES["walmart"]
        star = load_hamlet(db, "walmart", scale=0.02, seed=1)
        realized = db[star.fact_name].nrows / db[star.dimension_names[0]].nrows
        assert realized == pytest.approx(profile.tuple_ratio, rel=0.05)

    def test_dense_profile_defaults_to_no_target(self, db):
        star = load_hamlet(db, "walmart", scale=0.005, seed=1)
        assert db[star.fact_name].schema.target_column is None

    def test_join_integrity(self, db):
        star = load_hamlet(db, "movies", scale=0.005, seed=1)
        star.spec.resolve(db).check_integrity()


class TestSparseProfiles:
    def test_sparse_defaults_to_target(self, db):
        star = load_hamlet(db, "movies_sparse", scale=0.005, seed=2)
        assert db[star.fact_name].schema.target_column is not None

    def test_sparse_features_are_indicators(self, db):
        star = load_hamlet(db, "walmart_sparse", scale=0.01, seed=2)
        dim_feats = db[star.dimension_names[0]].features()
        assert set(np.unique(dim_feats)) <= {0.0, 1.0}
        # One-hot blocks: 3 categorical columns -> 3 ones per row.
        np.testing.assert_array_equal(dim_feats.sum(axis=1), 3.0)

    def test_sparse_widths_exact(self, db):
        star = load_hamlet(db, "walmart_sparse", scale=0.01, seed=2)
        assert db[star.fact_name].schema.num_features == 126
        assert db[star.dimension_names[0]].schema.num_features == 175


class TestMovies3Way:
    def test_default_shape(self, db):
        star = load_movies_3way(db, scale=0.01, seed=3)
        assert star.spec.num_dimensions == 2
        resolved = star.spec.resolve(db)
        assert resolved.total_features == (
            MOVIES_3WAY["d_s"] + MOVIES_3WAY["d_r1"] + MOVIES_3WAY["d_r2"]
        )
        resolved.check_integrity()

    def test_rr_injection_scales_r1(self, db):
        star = load_movies_3way(db, scale=0.01, rr_synthetic=3.0, seed=3)
        n_r1 = db["R_users"].nrows
        n_r2 = db["R_movies"].nrows
        assert n_r1 == pytest.approx(3 * n_r2, rel=0.05)

    def test_d_r1_override(self, db):
        star = load_movies_3way(db, scale=0.01, d_r1=11, seed=3)
        assert db["R_users"].schema.num_features == 11

    def test_invalid_rr(self, db):
        with pytest.raises(ModelError):
            load_movies_3way(db, scale=0.01, rr_synthetic=-1)
