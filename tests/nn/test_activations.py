"""Activation calculus and the additivity analysis of Section VI-A2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.nn.activations import (
    Identity,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    available_activations,
    get_activation,
)

ALL = [Identity(), Sigmoid(), Tanh(), ReLU(), Softplus()]

finite_floats = st.floats(
    min_value=-30, max_value=30, allow_nan=False, allow_infinity=False
)


class TestForward:
    def test_identity(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(Identity()(x), x)

    def test_sigmoid_range_and_midpoint(self):
        s = Sigmoid()
        assert s(np.array([0.0]))[0] == pytest.approx(0.5)
        # ±30 keeps 1−σ representable in float64 (σ(37) rounds to 1.0).
        values = s(np.linspace(-30, 30, 101))
        assert (values > 0).all() and (values < 1).all()

    def test_sigmoid_stable_at_extremes(self):
        s = Sigmoid()
        out = s(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_tanh(self):
        np.testing.assert_allclose(
            Tanh()(np.array([0.0, 1.0])), [0.0, np.tanh(1.0)]
        )

    def test_relu(self):
        np.testing.assert_array_equal(
            ReLU()(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_softplus_positive_and_asymptotic(self):
        sp = Softplus()
        x = np.array([-20.0, 0.0, 20.0])
        out = sp(x)
        assert (out > 0).all()
        assert out[2] == pytest.approx(20.0, abs=1e-6)


class TestDerivatives:
    @pytest.mark.parametrize("activation", ALL, ids=lambda a: a.name)
    def test_matches_finite_differences(self, activation, rng):
        x = rng.uniform(-3, 3, size=200)
        x = x[np.abs(x) > 1e-3]  # avoid ReLU's kink
        eps = 1e-6
        numeric = (activation(x + eps) - activation(x - eps)) / (2 * eps)
        np.testing.assert_allclose(
            activation.derivative(x), numeric, rtol=1e-5, atol=1e-7
        )

    def test_relu_derivative_at_sign_change(self):
        np.testing.assert_array_equal(
            ReLU().derivative(np.array([-1.0, 0.0, 1.0])), [0, 0, 1]
        )


class TestAdditivityFlags:
    def test_identity_is_additive(self):
        assert Identity().is_additive

    @pytest.mark.parametrize(
        "activation", [Sigmoid(), Tanh(), ReLU(), Softplus()],
        ids=lambda a: a.name,
    )
    def test_nonlinear_not_additive(self, activation):
        assert not activation.is_additive


class TestAdditivityViolations:
    @given(x=finite_floats, y=finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_identity_never_violates(self, x, y):
        assert Identity().additive_violation(x, y) < 1e-12

    @given(x=finite_floats, y=finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_relu_additive_iff_same_sign(self, x, y):
        violation = ReLU().additive_violation(x, y)
        if ReLU.additive_on(x, y):
            assert violation < 1e-12
        # opposite signs generally violate; spot-check a known case below

    def test_relu_violates_on_opposite_signs(self):
        assert ReLU().additive_violation(5.0, -3.0) > 0
        assert ReLU().additive_violation(-5.0, 3.0) > 0

    @pytest.mark.parametrize(
        "activation", [Sigmoid(), Tanh(), Softplus()],
        ids=lambda a: a.name,
    )
    def test_smooth_nonlinearities_violate(self, activation):
        """The reason Section VI-A2 rules out cross-layer reuse."""
        assert activation.additive_violation(1.0, 1.0) > 1e-3


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_activation("relu").name == "relu"

    def test_instance_passthrough(self):
        instance = Tanh()
        assert get_activation(instance) is instance

    def test_unknown_name(self):
        with pytest.raises(ModelError, match="unknown activation"):
            get_activation("swish")

    def test_available_listing(self):
        names = available_activations()
        assert names == sorted(names)
        assert {"identity", "relu", "sigmoid", "tanh", "softplus"} <= set(
            names
        )
