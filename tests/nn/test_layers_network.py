"""Dense layers and the MLP: forward shapes and gradient checks."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import DenseLayer
from repro.nn.network import MLP


class TestDenseLayer:
    def test_forward_formula(self, rng):
        layer = DenseLayer(rng.normal(size=(3, 4)), rng.normal(size=3))
        x = rng.normal(size=(5, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weights.T + layer.bias
        )

    def test_forward_width_checked(self, rng):
        layer = DenseLayer.initialize(4, 3, rng)
        with pytest.raises(ModelError):
            layer.forward(np.zeros((2, 5)))

    def test_bias_shape_checked(self, rng):
        with pytest.raises(ModelError):
            DenseLayer(rng.normal(size=(3, 4)), np.zeros(4))

    def test_initialize_shapes_and_scale(self, rng):
        layer = DenseLayer.initialize(100, 50, rng)
        assert layer.weights.shape == (50, 100)
        np.testing.assert_array_equal(layer.bias, np.zeros(50))
        assert 0.05 < layer.weights.std() < 0.2  # ~sqrt(2/150)

    def test_initialize_validates(self, rng):
        with pytest.raises(ModelError):
            DenseLayer.initialize(0, 3, rng)

    def test_backward_gradients_numerically(self, rng):
        layer = DenseLayer.initialize(3, 2, rng)
        x = rng.normal(size=(4, 3))
        grad_pre = rng.normal(size=(4, 2))

        def objective(weights, bias):
            return float(
                (grad_pre * (x @ weights.T + bias)).sum()
            )

        grads, grad_x = layer.backward(grad_pre, x)
        eps = 1e-6
        for j in range(2):
            for i in range(3):
                w_plus = layer.weights.copy()
                w_plus[j, i] += eps
                numeric = (
                    objective(w_plus, layer.bias)
                    - objective(layer.weights, layer.bias)
                ) / eps
                assert grads.weights[j, i] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-8
                )
        for j in range(2):
            b_plus = layer.bias.copy()
            b_plus[j] += eps
            numeric = (
                objective(layer.weights, b_plus)
                - objective(layer.weights, layer.bias)
            ) / eps
            assert grads.bias[j] == pytest.approx(numeric, rel=1e-4)
        np.testing.assert_allclose(grad_x, grad_pre @ layer.weights)

    def test_apply_grads_descends(self, rng):
        layer = DenseLayer.initialize(2, 2, rng)
        before = layer.weights.copy()
        grads, _ = layer.backward(np.ones((1, 2)), np.ones((1, 2)))
        layer.apply_grads(grads, 0.1)
        np.testing.assert_allclose(
            layer.weights, before - 0.1 * grads.weights
        )

    def test_copy_is_independent(self, rng):
        layer = DenseLayer.initialize(2, 2, rng)
        clone = layer.copy()
        clone.weights[0, 0] += 1
        assert layer.weights[0, 0] != clone.weights[0, 0]


class TestMLPForward:
    def test_architecture(self):
        model = MLP((4, 8, 3, 1), activation="tanh", seed=0)
        assert model.n_inputs == 4
        assert model.n_outputs == 1
        assert [layer.n_in for layer in model.layers] == [4, 8, 3]
        assert [layer.n_out for layer in model.layers] == [8, 3, 1]

    def test_needs_two_sizes(self):
        with pytest.raises(ModelError):
            MLP((4,))

    def test_seed_determinism(self):
        a = MLP((3, 5, 1), seed=42)
        b = MLP((3, 5, 1), seed=42)
        for la, lb in zip(a.layers, b.layers):
            np.testing.assert_array_equal(la.weights, lb.weights)

    def test_predict_shape(self, rng):
        model = MLP((3, 5, 2), seed=0)
        assert model.predict(rng.normal(size=(7, 3))).shape == (7, 2)

    def test_forward_seam_equals_direct(self, rng):
        """forward == first layer + forward_from_first_preactivation."""
        model = MLP((3, 6, 4, 1), activation="sigmoid", seed=1)
        x = rng.normal(size=(9, 3))
        direct, _ = model.forward(x)
        seamed, _ = model.forward_from_first_preactivation(
            model.first_layer.forward(x)
        )
        np.testing.assert_array_equal(direct, seamed)

    def test_identity_activation_is_linear_map(self, rng):
        model = MLP((3, 4, 1), activation="identity", seed=0)
        x = rng.normal(size=(5, 3))
        # Composition of linear maps: W2(W1 x + b1) + b2.
        w1, b1 = model.layers[0].weights, model.layers[0].bias
        w2, b2 = model.layers[1].weights, model.layers[1].bias
        expected = (x @ w1.T + b1) @ w2.T + b2
        np.testing.assert_allclose(model.predict(x), expected)

    def test_copy_detached(self, rng):
        model = MLP((2, 3, 1), seed=0)
        clone = model.copy()
        clone.layers[0].weights += 1
        assert not np.allclose(
            model.layers[0].weights, clone.layers[0].weights
        )


class TestMLPGradients:
    @pytest.mark.parametrize(
        "activation", ["sigmoid", "tanh", "identity", "softplus"]
    )
    def test_dense_gradients_numerically(self, activation, rng):
        model = MLP((3, 4, 2, 1), activation=activation, seed=3)
        x = rng.normal(size=(8, 3))
        y = rng.normal(size=8)
        _, grads = model.dense_gradients(x, y)
        eps = 1e-6
        for layer_index, layer in enumerate(model.layers):
            flat = layer.weights.ravel()
            picks = rng.choice(flat.size, size=min(6, flat.size),
                               replace=False)
            for position in picks:
                original = flat[position]
                flat[position] = original + eps
                loss_plus = model.loss_value(x, y)
                flat[position] = original - eps
                loss_minus = model.loss_value(x, y)
                flat[position] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                analytic = grads[layer_index].weights.ravel()[position]
                assert analytic == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                ), f"layer {layer_index} weight {position}"

    def test_bias_gradients_numerically(self, rng):
        model = MLP((2, 3, 1), activation="tanh", seed=5)
        x = rng.normal(size=(6, 2))
        y = rng.normal(size=6)
        _, grads = model.dense_gradients(x, y)
        eps = 1e-6
        for layer_index, layer in enumerate(model.layers):
            for j in range(layer.bias.size):
                original = layer.bias[j]
                layer.bias[j] = original + eps
                loss_plus = model.loss_value(x, y)
                layer.bias[j] = original - eps
                loss_minus = model.loss_value(x, y)
                layer.bias[j] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                assert grads[layer_index].bias[j] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                )

    def test_training_reduces_loss(self, rng):
        model = MLP((3, 8, 1), activation="tanh", seed=0)
        x = rng.normal(size=(100, 3))
        y = np.sin(x @ np.array([1.0, -1.0, 0.5]))
        initial = model.loss_value(x, y)
        for _ in range(60):
            _, grads = model.dense_gradients(x, y)
            model.apply_grads(grads, 0.5)
        assert model.loss_value(x, y) < 0.5 * initial
