"""The Section VI analytic cost models."""

import pytest

from repro.errors import ModelError
from repro.nn.cost_model import (
    backward_fields_dense,
    backward_fields_factorized,
    backward_io_saving_rate,
    layer1_break_even_tuple_ratio,
    layer1_forward_mults_dense,
    layer1_forward_mults_factorized,
    layer1_forward_saving_rate,
    layer2_ops_standard,
    layer2_ops_with_reuse,
    layer2_reuse_overhead,
)


class TestLayer1Forward:
    def test_dense_count(self):
        assert layer1_forward_mults_dense(100, 20, 50) == 100 * 20 * 50

    def test_factorized_count(self):
        assert layer1_forward_mults_factorized(
            100, 10, 5, 15, 50
        ) == 100 * 50 * 5 + 10 * 50 * 15

    def test_saving_rate_monotone_in_dr(self):
        rates = [
            layer1_forward_saving_rate(10_000, 100, 5, d_r, 50)
            for d_r in (2, 5, 15, 50, 200)
        ]
        assert rates == sorted(rates)

    def test_saving_rate_monotone_in_tuple_ratio(self):
        rates = [
            layer1_forward_saving_rate(n, 100, 5, 15, 50)
            for n in (200, 1_000, 10_000, 100_000)
        ]
        assert rates == sorted(rates)

    def test_saving_rate_bounds(self):
        rate = layer1_forward_saving_rate(10**6, 10**3, 5, 15, 50)
        assert 0 < rate < 1

    def test_no_saving_without_redundancy(self):
        assert layer1_forward_saving_rate(100, 100, 5, 15, 50) == 0

    def test_validation(self):
        with pytest.raises(ModelError):
            layer1_forward_mults_dense(0, 5, 5)


class TestLayer2Reuse:
    def test_standard_count(self):
        ops = layer2_ops_standard(100, 50, 10)
        assert ops.multiplications == 100 * 10 * 50
        assert ops.additions == 100 * 10 * 50

    def test_reuse_count(self):
        ops = layer2_ops_with_reuse(100, 8, 50, 10)
        assert ops.multiplications == (100 + 8) * 10 * 50

    def test_overhead_always_positive(self):
        """The paper's claim: reuse beyond layer 1 never pays."""
        for n in (10, 1_000, 10**6):
            for m in (1, 10, 1_000):
                assert layer2_reuse_overhead(n, m, 50, 10) > 0

    def test_overhead_scales_with_m(self):
        small = layer2_reuse_overhead(1000, 10, 50, 10)
        large = layer2_reuse_overhead(1000, 500, 50, 10)
        assert large > small


class TestBackwardIO:
    def test_dense_fields(self):
        assert backward_fields_dense(1000, 5, 15) == 1000 * 20

    def test_factorized_fields(self):
        assert backward_fields_factorized(
            1000, 100, 5, 15
        ) == 1000 * 5 + 100 * 15

    def test_saving_matches_paper_expression(self):
        """n_S·d_S + n_R·d_R < N·(d_S+d_R) whenever n_R < N."""
        n_s, n_r, d_s, d_r = 1000, 50, 5, 15
        assert backward_fields_factorized(
            n_s, n_r, d_s, d_r
        ) < backward_fields_dense(n_s, d_s, d_r)

    def test_saving_rate_monotone_in_dr(self):
        rates = [
            backward_io_saving_rate(10_000, 100, 5, d_r)
            for d_r in (2, 10, 50, 200)
        ]
        assert rates == sorted(rates)


class TestBreakEven:
    def test_dr_one_never_profits(self):
        assert layer1_break_even_tuple_ratio(5, 1) == float("inf")

    def test_break_even_decreases_with_dr(self):
        """Larger d_R → benefits start at lower tuple ratios, the trend
        behind 'rr > 200 at d_R=5 vs rr > 50 at d_R=15' (VII-C2)."""
        ratios = [
            layer1_break_even_tuple_ratio(5, d_r) for d_r in (2, 5, 15, 50)
        ]
        assert ratios == sorted(ratios, reverse=True)
