"""Section VI-A2: second-layer reuse is exact only for additive
activations and is never cheaper."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.linalg.design import FactorizedDesign
from repro.linalg.groupsum import GroupIndex
from repro.nn.layers import DenseLayer
from repro.nn.second_layer import (
    compare_second_layer,
    second_layer_with_reuse,
)


@pytest.fixture
def setup(rng):
    n, d_s, m, d_r, n_h, n_l = 60, 3, 8, 4, 5, 3
    design = FactorizedDesign(
        rng.normal(size=(n, d_s)),
        [rng.normal(size=(m, d_r))],
        [GroupIndex(rng.integers(0, m, size=n), m)],
    )
    first = DenseLayer.initialize(d_s + d_r, n_h, rng)
    first.bias += rng.normal(size=n_h)
    second = DenseLayer.initialize(n_h, n_l, rng)
    second.bias += rng.normal(size=n_l)
    return design, first, second


class TestExactness:
    def test_identity_activation_exact(self, setup):
        design, first, second = setup
        outcome = compare_second_layer(design, first, second, "identity")
        assert outcome.max_deviation < 1e-10

    @pytest.mark.parametrize("activation", ["sigmoid", "tanh"])
    def test_nonadditive_activations_deviate(self, setup, activation):
        """Sigmoid/tanh break Eq. 27 — the paper's stated reason to
        stop factorizing after the first layer."""
        design, first, second = setup
        outcome = compare_second_layer(design, first, second, activation)
        assert outcome.max_deviation > 1e-3

    def test_relu_deviates_when_signs_differ(self, setup):
        design, first, second = setup
        outcome = compare_second_layer(design, first, second, "relu")
        # With random weights, T1/T2 sign disagreements occur and the
        # reuse path diverges.
        assert outcome.max_deviation > 1e-6

    def test_relu_exact_when_signs_agree(self, rng):
        """Force all partial sums positive: ReLU behaves additively."""
        n, m = 30, 5
        design = FactorizedDesign(
            rng.uniform(0.5, 1.0, size=(n, 2)),
            [rng.uniform(0.5, 1.0, size=(m, 3))],
            [GroupIndex(rng.integers(0, m, size=n), m)],
        )
        first = DenseLayer(
            np.abs(rng.normal(size=(4, 5))), np.abs(rng.normal(size=4))
        )
        second = DenseLayer(
            np.abs(rng.normal(size=(2, 4))), np.abs(rng.normal(size=2))
        )
        outcome = compare_second_layer(design, first, second, "relu")
        assert outcome.max_deviation < 1e-10

    def test_multiway_rejected(self, rng):
        design = FactorizedDesign(
            rng.normal(size=(10, 2)),
            [rng.normal(size=(3, 2)), rng.normal(size=(3, 2))],
            [
                GroupIndex(rng.integers(0, 3, size=10), 3),
                GroupIndex(rng.integers(0, 3, size=10), 3),
            ],
        )
        first = DenseLayer.initialize(6, 4, rng)
        second = DenseLayer.initialize(4, 2, rng)
        with pytest.raises(ModelError, match="binary"):
            second_layer_with_reuse(design, first, second, "identity")


class TestOperationCounts:
    def test_reuse_never_cheaper_at_layer2(self, setup):
        """Even when exact, the T1/T2/T3 scheme multiplies more —
        the paper's conclusion that cross-layer reuse never pays."""
        design, first, second = setup
        outcome = compare_second_layer(design, first, second, "identity")
        n, m = design.n, design.dim_blocks[0].shape[0]
        n_h, n_l = first.n_out, second.n_out
        d_s, d_r = design.layout.sizes
        # Layer-2-only comparison: reuse adds the T3 build cost.
        standard_layer2 = n * n_l * n_h
        reuse_layer2 = n * n_l * n_h + m * n_l * n_h
        assert reuse_layer2 > standard_layer2
        # Measured totals line up with the model.
        assert outcome.standard_multiplications == (
            n * n_h * (d_s + d_r) + standard_layer2
        )
        assert outcome.reused_multiplications == (
            n * n_h * d_s + m * n_h * d_r + reuse_layer2
        )

    def test_overall_reuse_can_win_only_via_layer1(self, rng):
        """With huge d_r and tiny layers, layer-1 savings can outweigh
        the layer-2 penalty — but the layer-2 *portion* alone is always
        a loss, matching Section VI-A2's conclusion."""
        n, m, d_s, d_r, n_h, n_l = 200, 4, 2, 50, 3, 2
        design = FactorizedDesign(
            rng.normal(size=(n, d_s)),
            [rng.normal(size=(m, d_r))],
            [GroupIndex(rng.integers(0, m, size=n), m)],
        )
        first = DenseLayer.initialize(d_s + d_r, n_h, rng)
        second = DenseLayer.initialize(n_h, n_l, rng)
        outcome = compare_second_layer(design, first, second, "identity")
        assert (
            outcome.reused_multiplications
            < outcome.standard_multiplications
        )


class TestPlanThreading:
    """``plan=`` mirrors the serving predictors' keyword: same values,
    no second dedup, stale plans rejected."""

    def make_plan_design(self, rng, n=60, d_s=3, d_r=4):
        from repro.fx.dedup import DedupPlan

        fks = rng.integers(100, 108, size=n).astype(np.int64)
        plan = DedupPlan.for_batch([fks])
        m = plan.dims[0].m
        design = FactorizedDesign.from_plan(
            rng.normal(size=(n, d_s)),
            [rng.normal(size=(m, d_r))],
            plan,
        )
        return design, plan

    def test_plan_and_group_paths_agree_bitwise(self, rng):
        design, plan = self.make_plan_design(rng)
        first = DenseLayer.initialize(7, 5, rng)
        second = DenseLayer.initialize(5, 3, rng)
        with_plan, mults_plan = second_layer_with_reuse(
            design, first, second, "identity", plan=plan
        )
        without, mults_plain = second_layer_with_reuse(
            design, first, second, "identity"
        )
        np.testing.assert_array_equal(with_plan, without)
        assert mults_plan == mults_plain

    def test_stale_plan_rejected(self, rng):
        from repro.fx.dedup import DedupPlan

        design, _ = self.make_plan_design(rng)
        first = DenseLayer.initialize(7, 5, rng)
        second = DenseLayer.initialize(5, 3, rng)
        stale = DedupPlan.for_batch(
            [rng.integers(0, 4, size=design.n - 1).astype(np.int64)]
        )
        with pytest.raises(ModelError, match="plan"):
            second_layer_with_reuse(
                design, first, second, "identity", plan=stale
            )

    def test_compare_threads_plan(self, rng):
        design, plan = self.make_plan_design(rng)
        first = DenseLayer.initialize(7, 5, rng)
        second = DenseLayer.initialize(5, 3, rng)
        outputs = compare_second_layer(
            design, first, second, "identity", plan=plan
        )
        assert outputs.max_deviation < 1e-9
