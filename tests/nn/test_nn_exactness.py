"""Exactness of F-NN: the factorized first layer reproduces the dense
computation bit-for-bit (up to float associativity), and all three
strategies train to the same weights."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DimensionSpec,
    StarSchemaConfig,
    generate_star,
)
from repro.errors import ModelError
from repro.join.factorized import FactorizedJoin
from repro.join.stream import StreamingJoin
from repro.nn.algorithms import build_model, fit_f_nn, fit_m_nn, fit_s_nn
from repro.nn.base import NNConfig
from repro.nn.engines import DenseNNEngine, FactorizedNNEngine


@pytest.fixture
def star(db):
    config = StarSchemaConfig.binary(
        n_s=400, n_r=20, d_s=3, d_r=5, with_target=True, seed=17
    )
    return generate_star(db, config)


@pytest.fixture
def multiway(db):
    config = StarSchemaConfig(
        n_s=300,
        d_s=2,
        dimensions=(DimensionSpec(10, 3), DimensionSpec(7, 4)),
        with_target=True,
        seed=19,
    )
    return generate_star(db, config)


def weights_equal(a, b, rtol=1e-9):
    for la, lb in zip(a.layers, b.layers):
        np.testing.assert_allclose(la.weights, lb.weights, rtol=rtol,
                                   atol=1e-12)
        np.testing.assert_allclose(la.bias, lb.bias, rtol=rtol,
                                   atol=1e-12)


class TestFirstLayerKernels:
    def test_factorized_preactivations_match_dense(self, db, star):
        config = NNConfig(hidden_sizes=(7,), seed=3)
        stream = StreamingJoin(db, star.spec, block_pages=2)
        fact = FactorizedJoin(db, star.spec, block_pages=2)
        model = build_model(8, config)
        fact_engine = FactorizedNNEngine(fact, model)
        for dense_batch, fact_batch in zip(
            stream.batches(), fact.batches()
        ):
            dense_pre = model.first_layer.forward(dense_batch.features)
            fact_pre = fact_engine.first_preactivations(fact_batch)
            np.testing.assert_allclose(
                fact_pre, dense_pre, rtol=1e-10, atol=1e-12
            )

    @pytest.mark.parametrize("grouped", [False, True])
    def test_first_layer_grads_match_dense(self, db, star, grouped):
        config = NNConfig(hidden_sizes=(6,), seed=4)
        stream = StreamingJoin(db, star.spec, block_pages=2)
        fact = FactorizedJoin(db, star.spec, block_pages=2)
        model = build_model(8, config)
        dense_engine = DenseNNEngine(stream, model)
        fact_engine = FactorizedNNEngine(
            fact, model.copy(), grouped_backward=grouped
        )
        for dense_batch, fact_batch in zip(
            stream.batches(), fact.batches()
        ):
            _, dense_grads = dense_engine.batch_gradients(
                dense_batch, dense_batch.n
            )
            _, fact_grads = fact_engine.batch_gradients(
                fact_batch, fact_batch.n
            )
            np.testing.assert_allclose(
                fact_grads[0].weights,
                dense_grads[0].weights,
                rtol=1e-8,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                fact_grads[0].bias, dense_grads[0].bias, rtol=1e-8
            )

    def test_batch_without_target_rejected(self, db):
        config = StarSchemaConfig.binary(
            n_s=50, n_r=5, d_s=2, d_r=2, with_target=False, seed=1
        )
        star = generate_star(db, config)
        fact = FactorizedJoin(db, star.spec)
        engine = FactorizedNNEngine(
            fact, build_model(4, NNConfig(hidden_sizes=(3,)))
        )
        batch = next(iter(fact.batches()))
        with pytest.raises(ModelError, match="TARGET"):
            engine.batch_gradients(batch, batch.n)


class TestFullBatchExactness:
    def test_all_three_strategies_identical(self, db, star):
        config = NNConfig(
            hidden_sizes=(10,), epochs=4, learning_rate=0.1,
            batch_mode="full", seed=6,
        )
        m = fit_m_nn(db, star.spec, config, block_pages=2)
        s = fit_s_nn(db, star.spec, config, block_pages=2)
        f = fit_f_nn(db, star.spec, config, block_pages=2)
        np.testing.assert_allclose(m.loss_history, s.loss_history,
                                   rtol=1e-10)
        np.testing.assert_allclose(s.loss_history, f.loss_history,
                                   rtol=1e-8)
        weights_equal(m.model, s.model)
        weights_equal(s.model, f.model, rtol=1e-8)

    def test_multiway_identical(self, db, multiway):
        config = NNConfig(
            hidden_sizes=(8,), epochs=3, learning_rate=0.05,
            batch_mode="full", seed=2,
        )
        m = fit_m_nn(db, multiway.spec, config, block_pages=3)
        f = fit_f_nn(db, multiway.spec, config, block_pages=3)
        np.testing.assert_allclose(m.loss_history, f.loss_history,
                                   rtol=1e-8)
        weights_equal(m.model, f.model, rtol=1e-8)

    @pytest.mark.parametrize("activation", ["sigmoid", "tanh", "relu",
                                            "identity"])
    def test_exact_for_every_activation(self, db, star, activation):
        """Layer-1 factorization is exact regardless of activation —
        additivity only matters beyond the first layer."""
        config = NNConfig(
            hidden_sizes=(6,), activation=activation, epochs=2,
            learning_rate=0.05, batch_mode="full", seed=1,
        )
        s = fit_s_nn(db, star.spec, config, block_pages=2)
        f = fit_f_nn(db, star.spec, config, block_pages=2)
        weights_equal(s.model, f.model, rtol=1e-8)

    def test_two_hidden_layers(self, db, star):
        """F-NN factorizes only layer 1; deeper nets stay exact."""
        config = NNConfig(
            hidden_sizes=(8, 5), epochs=2, learning_rate=0.05,
            batch_mode="full", seed=3,
        )
        s = fit_s_nn(db, star.spec, config, block_pages=2)
        f = fit_f_nn(db, star.spec, config, block_pages=2)
        weights_equal(s.model, f.model, rtol=1e-8)


class TestPerBatchExactness:
    def test_streaming_equals_factorized(self, db, star):
        """S-NN and F-NN consume identical batches, so even mini-batch
        trajectories coincide exactly."""
        config = NNConfig(
            hidden_sizes=(10,), epochs=3, learning_rate=0.1,
            batch_mode="per-batch", seed=6,
        )
        s = fit_s_nn(db, star.spec, config, block_pages=1)
        f = fit_f_nn(db, star.spec, config, block_pages=1)
        np.testing.assert_allclose(s.loss_history, f.loss_history,
                                   rtol=1e-8)
        weights_equal(s.model, f.model, rtol=1e-7)

    def test_grouped_backward_same_model(self, db, star):
        """The grouped-backward extension changes cost, not results."""
        base = NNConfig(
            hidden_sizes=(10,), epochs=3, learning_rate=0.1, seed=6,
        )
        grouped = NNConfig(
            hidden_sizes=(10,), epochs=3, learning_rate=0.1, seed=6,
            grouped_backward=True,
        )
        plain = fit_f_nn(db, star.spec, base, block_pages=2)
        extended = fit_f_nn(db, star.spec, grouped, block_pages=2)
        weights_equal(plain.model, extended.model, rtol=1e-7)

    def test_sgd_shuffle_same_multiset_of_updates(self, db, star):
        """With shuffling, S-NN and F-NN still coincide (same seeded
        permutation drives both access paths)."""
        config = NNConfig(
            hidden_sizes=(6,), epochs=2, learning_rate=0.05,
            shuffle=True, seed=9,
        )
        s = fit_s_nn(db, star.spec, config, block_pages=1)
        f = fit_f_nn(db, star.spec, config, block_pages=1)
        weights_equal(s.model, f.model, rtol=1e-7)


class TestResultMetadata:
    def test_labels(self, db, star):
        config = NNConfig(hidden_sizes=(4,), epochs=1)
        assert fit_m_nn(db, star.spec, config).algorithm == "M-NN"
        assert fit_s_nn(db, star.spec, config).algorithm == "S-NN"
        assert fit_f_nn(db, star.spec, config).algorithm == "F-NN"

    def test_m_nn_reports_materialization(self, db, star):
        config = NNConfig(hidden_sizes=(4,), epochs=1)
        result = fit_m_nn(db, star.spec, config)
        assert result.extra["table_pages"] > 0
        assert result.io.pages_written >= result.extra["table_pages"]

    def test_f_nn_never_writes(self, db, star):
        config = NNConfig(hidden_sizes=(4,), epochs=1)
        assert fit_f_nn(db, star.spec, config).io.pages_written == 0

    def test_missing_target_raises(self, db):
        config = StarSchemaConfig.binary(
            n_s=50, n_r=5, d_s=2, d_r=2, with_target=False, seed=1
        )
        star = generate_star(db, config)
        with pytest.raises(ModelError, match="TARGET"):
            fit_f_nn(db, star.spec, NNConfig(hidden_sizes=(3,), epochs=1))
