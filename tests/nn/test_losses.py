"""Loss values and gradients (checked numerically)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.losses import BinaryCrossEntropy, HalfMSE, get_loss


class TestHalfMSE:
    def test_value_formula(self):
        loss = HalfMSE()
        outputs = np.array([[1.0], [3.0]])
        targets = np.array([0.0, 1.0])
        # (1 + 4) / (2*2)
        assert loss.value(outputs, targets) == pytest.approx(1.25)

    def test_zero_at_perfect_fit(self, rng):
        targets = rng.normal(size=7)
        assert HalfMSE().value(targets[:, None], targets) == 0.0

    def test_gradient_matches_finite_differences(self, rng):
        loss = HalfMSE()
        outputs = rng.normal(size=(6, 1))
        targets = rng.normal(size=6)
        grad = loss.gradient(outputs, targets)
        eps = 1e-6
        for i in range(6):
            bumped = outputs.copy()
            bumped[i, 0] += eps
            numeric = (
                loss.value(bumped, targets) - loss.value(outputs, targets)
            ) / eps
            assert grad[i, 0] == pytest.approx(numeric, rel=1e-4)

    def test_normalization_override(self, rng):
        loss = HalfMSE()
        outputs = rng.normal(size=(4, 1))
        targets = rng.normal(size=4)
        assert loss.value(outputs, targets, normalization=8) == (
            pytest.approx(loss.value(outputs, targets) / 2)
        )
        np.testing.assert_allclose(
            loss.gradient(outputs, targets, normalization=8),
            loss.gradient(outputs, targets) / 2,
        )

    def test_split_batches_equal_single_batch(self, rng):
        """Accumulating with total-N normalization is exact — the
        property full-batch training across access paths relies on."""
        loss = HalfMSE()
        outputs = rng.normal(size=(10, 1))
        targets = rng.normal(size=10)
        whole = loss.value(outputs, targets)
        split = loss.value(
            outputs[:4], targets[:4], normalization=10
        ) + loss.value(outputs[4:], targets[4:], normalization=10)
        assert split == pytest.approx(whole)

    def test_empty_batch_rejected(self):
        with pytest.raises(ModelError):
            HalfMSE().value(np.zeros((0, 1)), np.zeros(0))

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            HalfMSE().value(np.zeros((3, 1)), np.zeros(4))


class TestBinaryCrossEntropy:
    def test_value_at_confident_correct(self):
        loss = BinaryCrossEntropy()
        outputs = np.array([[20.0], [-20.0]])
        targets = np.array([1.0, 0.0])
        assert loss.value(outputs, targets) == pytest.approx(0.0, abs=1e-6)

    def test_value_stable_at_extreme_logits(self):
        loss = BinaryCrossEntropy()
        outputs = np.array([[1000.0], [-1000.0]])
        targets = np.array([0.0, 1.0])
        assert np.isfinite(loss.value(outputs, targets))

    def test_gradient_matches_finite_differences(self, rng):
        loss = BinaryCrossEntropy()
        outputs = rng.normal(size=(5, 1))
        targets = (rng.uniform(size=5) > 0.5).astype(float)
        grad = loss.gradient(outputs, targets)
        eps = 1e-6
        for i in range(5):
            bumped = outputs.copy()
            bumped[i, 0] += eps
            numeric = (
                loss.value(bumped, targets) - loss.value(outputs, targets)
            ) / eps
            assert grad[i, 0] == pytest.approx(numeric, rel=1e-4, abs=1e-8)


class TestRegistry:
    def test_lookup(self):
        assert get_loss("half_mse").name == "half_mse"
        assert get_loss("bce").name == "bce"

    def test_passthrough(self):
        loss = HalfMSE()
        assert get_loss(loss) is loss

    def test_unknown(self):
        with pytest.raises(ModelError):
            get_loss("hinge")
