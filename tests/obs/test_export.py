"""Exporters: Prometheus text round-trip through the strict parser,
JSON snapshot schema, label escaping."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    prometheus_text,
    snapshot_to_json,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter(
        "repro_requests_total", help="Requests served",
        labelnames=("model", "op"),
    ).labels(model="m", op="predict").inc(5)
    reg.gauge("repro_queue_depth", help="Requests waiting").set(3)
    h = reg.histogram(
        "repro_batch_seconds", buckets=(0.1, 1.0), help="Batch wall time"
    )
    h.observe(0.05)
    h.observe(0.5)
    h.observe(2.0)
    return reg


class TestPrometheusText:
    def test_counter_gets_total_suffix_once(self):
        reg = MetricsRegistry()
        reg.counter("evts_total").inc()
        reg.counter("raw").inc()
        text = prometheus_text(reg.snapshot())
        assert "evts_total 1" in text
        assert "evts_total_total" not in text
        assert "raw_total 1" in text

    def test_help_and_type_headers(self):
        text = prometheus_text(populated_registry().snapshot())
        assert "# HELP repro_requests_total Requests served" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_batch_seconds histogram" in text

    def test_histogram_expansion(self):
        text = prometheus_text(populated_registry().snapshot())
        assert 'repro_batch_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_batch_seconds_bucket{le="1"} 2' in text
        assert 'repro_batch_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_batch_seconds_sum 2.55" in text
        assert "repro_batch_seconds_count 3" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("g", labelnames=("tag",)).labels(
            tag='quo"te\\back\nline'
        ).set(1)
        text = prometheus_text(reg.snapshot())
        parsed = parse_prometheus_text(text)
        [(labels, value)] = parsed["series"]["g"].items()
        assert dict(labels)["tag"] == 'quo"te\\back\nline'
        assert value == 1.0


class TestRoundTrip:
    def test_full_round_trip(self):
        snap = populated_registry().snapshot()
        parsed = parse_prometheus_text(prometheus_text(snap))
        series, types = parsed["series"], parsed["types"]
        key = (("model", "m"), ("op", "predict"))
        assert series["repro_requests_total"][key] == 5.0
        assert series["repro_queue_depth"][()] == 3.0
        assert types["repro_requests_total"] == "counter"
        assert types["repro_batch_seconds"] == "histogram"
        # Cumulative buckets monotone, +Inf bucket == _count.
        buckets = series["repro_batch_seconds_bucket"]
        counts = [
            buckets[(("le", "0.1"),)],
            buckets[(("le", "1"),)],
            buckets[(("le", "+Inf"),)],
        ]
        assert counts == sorted(counts)
        assert counts[-1] == series["repro_batch_seconds_count"][()]

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE x summary\n")
        with pytest.raises(ValueError, match="comment"):
            parse_prometheus_text("# EOF\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text('x{a="1" 3\n')

    def test_labels_with_commas_inside_values(self):
        reg = MetricsRegistry()
        reg.gauge("g", labelnames=("tag",)).labels(tag="a,b").set(2)
        parsed = parse_prometheus_text(prometheus_text(reg.snapshot()))
        assert parsed["series"]["g"][(("tag", "a,b"),)] == 2.0


class TestParserEdgeCases:
    """Hand-written exposition text, not round-trips: the strict
    parser must accept the awkward-but-legal corners of the format."""

    def test_plus_inf_value_parses_to_float_inf(self):
        parsed = parse_prometheus_text("x +Inf\n")
        assert parsed["series"]["x"][()] == float("inf")

    def test_inf_bucket_out_of_order_still_parses(self):
        # Exposition order is not semantics: a scrape that lists the
        # +Inf bucket first still yields every cell.
        text = (
            "# TYPE w_seconds histogram\n"
            'w_seconds_bucket{le="+Inf"} 3\n'
            'w_seconds_bucket{le="0.1"} 1\n'
            'w_seconds_bucket{le="1"} 2\n'
            "w_seconds_sum 1.5\n"
            "w_seconds_count 3\n"
        )
        parsed = parse_prometheus_text(text)
        buckets = parsed["series"]["w_seconds_bucket"]
        assert buckets[(("le", "+Inf"),)] == 3.0
        assert buckets[(("le", "0.1"),)] == 1.0
        assert parsed["series"]["w_seconds_count"][()] == 3.0
        assert parsed["types"]["w_seconds"] == "histogram"

    def test_escaped_label_values_unescape(self):
        text = 'g{tag="quo\\"te\\nline\\\\back"} 1\n'
        parsed = parse_prometheus_text(text)
        [(labels, value)] = parsed["series"]["g"].items()
        assert dict(labels)["tag"] == 'quo"te\nline\\back'
        assert value == 1.0

    def test_type_header_without_samples_is_an_empty_family(self):
        # A family can be declared but never observed (e.g. a counter
        # registered on a path that never ran): the type survives, no
        # series appears, and nothing raises.
        parsed = parse_prometheus_text("# TYPE quiet_total counter\n")
        assert parsed["types"]["quiet_total"] == "counter"
        assert "quiet_total" not in parsed["series"]

    def test_empty_text_is_empty_families(self):
        assert parse_prometheus_text("") == {"series": {}, "types": {}}
        assert parse_prometheus_text("\n\n") == {"series": {}, "types": {}}

    def test_help_lines_are_skipped_not_parsed(self):
        text = "# HELP x helpful words { not labels }\nx 1\n"
        assert parse_prometheus_text(text)["series"]["x"][()] == 1.0

    def test_unquoted_label_value_rejected(self):
        with pytest.raises(ValueError, match="label"):
            parse_prometheus_text("x{a=1} 3\n")


class TestJson:
    def test_schema(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        metrics = doc["metrics"]
        [req] = metrics["repro_requests_total"]
        assert req["kind"] == "counter"
        assert req["labels"] == {"model": "m", "op": "predict"}
        assert req["value"] == 5.0
        [hist] = metrics["repro_batch_seconds"]
        assert hist["histogram"]["buckets"] == [0.1, 1.0]
        assert hist["histogram"]["cumulative"] == [1, 2, 3]
        assert hist["histogram"]["count"] == 3
        assert hist["histogram"]["sum"] == pytest.approx(2.55)

    def test_empty_snapshot(self):
        doc = json.loads(
            snapshot_to_json(MetricsRegistry(enabled=False).snapshot())
        )
        assert doc == {"metrics": {}}
