"""Exporters: Prometheus text round-trip through the strict parser,
JSON snapshot schema, label escaping."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    prometheus_text,
    snapshot_to_json,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter(
        "repro_requests_total", help="Requests served",
        labelnames=("model", "op"),
    ).labels(model="m", op="predict").inc(5)
    reg.gauge("repro_queue_depth", help="Requests waiting").set(3)
    h = reg.histogram(
        "repro_batch_seconds", buckets=(0.1, 1.0), help="Batch wall time"
    )
    h.observe(0.05)
    h.observe(0.5)
    h.observe(2.0)
    return reg


class TestPrometheusText:
    def test_counter_gets_total_suffix_once(self):
        reg = MetricsRegistry()
        reg.counter("evts_total").inc()
        reg.counter("raw").inc()
        text = prometheus_text(reg.snapshot())
        assert "evts_total 1" in text
        assert "evts_total_total" not in text
        assert "raw_total 1" in text

    def test_help_and_type_headers(self):
        text = prometheus_text(populated_registry().snapshot())
        assert "# HELP repro_requests_total Requests served" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_batch_seconds histogram" in text

    def test_histogram_expansion(self):
        text = prometheus_text(populated_registry().snapshot())
        assert 'repro_batch_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_batch_seconds_bucket{le="1"} 2' in text
        assert 'repro_batch_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_batch_seconds_sum 2.55" in text
        assert "repro_batch_seconds_count 3" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("g", labelnames=("tag",)).labels(
            tag='quo"te\\back\nline'
        ).set(1)
        text = prometheus_text(reg.snapshot())
        parsed = parse_prometheus_text(text)
        [(labels, value)] = parsed["series"]["g"].items()
        assert dict(labels)["tag"] == 'quo"te\\back\nline'
        assert value == 1.0


class TestRoundTrip:
    def test_full_round_trip(self):
        snap = populated_registry().snapshot()
        parsed = parse_prometheus_text(prometheus_text(snap))
        series, types = parsed["series"], parsed["types"]
        key = (("model", "m"), ("op", "predict"))
        assert series["repro_requests_total"][key] == 5.0
        assert series["repro_queue_depth"][()] == 3.0
        assert types["repro_requests_total"] == "counter"
        assert types["repro_batch_seconds"] == "histogram"
        # Cumulative buckets monotone, +Inf bucket == _count.
        buckets = series["repro_batch_seconds_bucket"]
        counts = [
            buckets[(("le", "0.1"),)],
            buckets[(("le", "1"),)],
            buckets[(("le", "+Inf"),)],
        ]
        assert counts == sorted(counts)
        assert counts[-1] == series["repro_batch_seconds_count"][()]

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE x summary\n")
        with pytest.raises(ValueError, match="comment"):
            parse_prometheus_text("# EOF\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text('x{a="1" 3\n')

    def test_labels_with_commas_inside_values(self):
        reg = MetricsRegistry()
        reg.gauge("g", labelnames=("tag",)).labels(tag="a,b").set(2)
        parsed = parse_prometheus_text(prometheus_text(reg.snapshot()))
        assert parsed["series"]["g"][(("tag", "a,b"),)] == 2.0


class TestJson:
    def test_schema(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        metrics = doc["metrics"]
        [req] = metrics["repro_requests_total"]
        assert req["kind"] == "counter"
        assert req["labels"] == {"model": "m", "op": "predict"}
        assert req["value"] == 5.0
        [hist] = metrics["repro_batch_seconds"]
        assert hist["histogram"]["buckets"] == [0.1, 1.0]
        assert hist["histogram"]["cumulative"] == [1, 2, 3]
        assert hist["histogram"]["count"] == 3
        assert hist["histogram"]["sum"] == pytest.approx(2.55)

    def test_empty_snapshot(self):
        doc = json.loads(
            snapshot_to_json(MetricsRegistry(enabled=False).snapshot())
        )
        assert doc == {"metrics": {}}
