"""The live HTTP endpoint: serve_runtime(telemetry_port=0) must serve
valid Prometheus text, a JSON snapshot, and trace trees while the
runtime is answering requests (tier-1 smoke for the scrape path)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.api import fit_nn, serve_runtime
from repro.obs import TelemetryServer, Telemetry, parse_prometheus_text


def fetch(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read()


class TestTelemetryServer:
    def test_ephemeral_port_and_close(self):
        tel = Telemetry()
        tel.registry.gauge("up").set(1)
        server = TelemetryServer(tel, port=0)
        try:
            assert server.port > 0
            assert server.url.endswith(str(server.port))
            text = fetch(f"{server.url}/metrics").decode()
            assert parse_prometheus_text(text)["series"]["up"][()] == 1.0
        finally:
            server.close()

    def test_unknown_path_404(self):
        server = TelemetryServer(Telemetry(), port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(f"{server.url}/nope")
            assert err.value.code == 404
        finally:
            server.close()


class TestLiveRuntimeEndpoint:
    def test_scrape_live_runtime(self, db, binary_star):
        nn = fit_nn(db, binary_star.spec, hidden_sizes=(8,), epochs=1)
        with serve_runtime(
            db, num_workers=2, telemetry_port=0
        ) as runtime:
            # telemetry_port implies telemetry=True.
            assert runtime.telemetry.enabled
            runtime.register_nn("m", nn, binary_star.spec)
            rng = np.random.default_rng(3)
            xs = rng.normal(size=(32, 3))
            fks = rng.integers(0, 25, size=(32, 1))
            futures = [
                runtime.submit("m", xs[i : i + 4], fks[i : i + 4])
                for i in range(0, 32, 4)
            ]
            for future in futures:
                future.result()

            base = runtime.telemetry_server.url

            # /metrics parses strictly and shows the served requests.
            parsed = parse_prometheus_text(fetch(f"{base}/metrics").decode())
            series = parsed["series"]
            key = (("model", "m"), ("op", "predict"))
            assert series["repro_requests_total"][key] == 8.0
            assert parsed["types"]["repro_queue_depth"] == "gauge"
            # Collector-sampled families made it out too.
            assert any(
                name.startswith("repro_cache_") for name in series
            )
            assert any(
                name.startswith("repro_bufferpool_") for name in series
            )

            # /snapshot.json is valid JSON with the same families.
            doc = json.loads(fetch(f"{base}/snapshot.json"))
            assert "repro_requests_total" in doc["metrics"]

            # /traces.json carries at least one full span tree.
            traces = json.loads(fetch(f"{base}/traces.json"))
            assert traces["recent"]
            root = traces["recent"][-1]
            names = {c["name"] for c in root["children"]}
            assert root["name"] == "serve.batch"
            assert {"queue.wait", "dedup", "plan", "predict"} <= names
        # Context-manager exit closed the HTTP server.
        with pytest.raises((urllib.error.URLError, OSError)):
            fetch(f"{base}/metrics")
