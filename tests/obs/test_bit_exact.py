"""Telemetry must never change results: serving and training produce
bit-identical outputs with telemetry on vs off."""

import numpy as np

from repro.core.api import fit_gmm, fit_nn, serve, serve_runtime
from repro.obs import Telemetry


class TestServingBitExact:
    def test_runtime_outputs_identical(self, db, binary_star):
        nn = fit_nn(db, binary_star.spec, hidden_sizes=(8,), epochs=1)
        rng = np.random.default_rng(9)
        xs = rng.normal(size=(48, 3))
        fks = rng.integers(0, 25, size=(48, 1))

        outputs = {}
        for name, telemetry in (("off", None), ("on", True)):
            with serve_runtime(
                db, num_workers=2, telemetry=telemetry
            ) as runtime:
                runtime.register_nn("m", nn, binary_star.spec)
                futures = [
                    runtime.submit("m", xs[i : i + 6], fks[i : i + 6])
                    for i in range(0, 48, 6)
                ]
                outputs[name] = np.concatenate(
                    [future.result() for future in futures]
                )
        np.testing.assert_array_equal(outputs["on"], outputs["off"])

    def test_service_outputs_identical(self, db, binary_star):
        gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, tol=0.0
        )
        fact = binary_star.spec.resolve(db).fact
        rows = fact.scan()
        xs = fact.project_features(rows)
        fks = rows[:, fact.schema.fk_position("R1")].astype(np.int64)

        outputs = {}
        for name, telemetry in (("off", None), ("on", True)):
            service = serve(db, telemetry=telemetry)
            service.register_gmm("g", gmm, binary_star.spec)
            outputs[name] = service.predict("g", xs, fks)
            service.close()
        np.testing.assert_array_equal(outputs["on"], outputs["off"])


class TestTrainingBitExact:
    def test_fits_identical(self, db, binary_star):
        tel = Telemetry()
        plain_nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(8,), epochs=2, seed=3
        )
        telemetered_nn = fit_nn(
            db, binary_star.spec, hidden_sizes=(8,), epochs=2, seed=3,
            telemetry=tel,
        )
        np.testing.assert_array_equal(
            plain_nn.fit.model.layers[0].weights,
            telemetered_nn.fit.model.layers[0].weights,
        )
        assert plain_nn.fit.loss_history == telemetered_nn.fit.loss_history

        plain_gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, tol=0.0,
            seed=3,
        )
        telemetered_gmm = fit_gmm(
            db, binary_star.spec, n_components=2, max_iter=2, tol=0.0,
            seed=3, telemetry=tel,
        )
        np.testing.assert_array_equal(
            plain_gmm.fit.params.means, telemetered_gmm.fit.params.means
        )
        assert (
            plain_gmm.fit.log_likelihood_history
            == telemetered_gmm.fit.log_likelihood_history
        )
        # The telemetered runs also left their series behind.
        assert len(telemetered_nn.fit.extra["epoch_seconds"]) == 2
        assert len(telemetered_gmm.fit.extra["iteration_seconds"]) == 2
        snap = tel.snapshot()
        assert snap.value(
            "repro_training_iterations_total", algorithm="F-NN"
        ) == 2.0
        assert snap.value(
            "repro_training_iterations_total", algorithm="F-GMM"
        ) == 2.0
