"""MetricsRegistry: instruments, labels, snapshots, collectors,
thread-safety, and the disabled-mode no-op fast path."""

import gc
import threading

import pytest

from repro.errors import ModelError
from repro.obs import (
    LATENCY_BUCKETS_S,
    HistogramValue,
    MetricsRegistry,
    NULL_TELEMETRY,
    Telemetry,
    as_telemetry,
)
from repro.obs.metrics import NOOP_INSTRUMENT


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(4)
        assert reg.snapshot().value("events_total") == 5.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ModelError, match="cannot decrease"):
            reg.counter("events_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(3)
        g.dec(5)
        assert reg.snapshot().value("depth") == 8.0

    def test_same_name_returns_same_cell(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        reg.counter("x_total").inc()
        assert reg.snapshot().value("x_total") == 2.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ModelError, match="already registered"):
            reg.gauge("thing")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ModelError, match="metric name"):
            reg.counter("bad-name")
        with pytest.raises(ModelError, match="metric name"):
            reg.counter("0leading")


class TestLabels:
    def test_labeled_cells_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("reqs_total", labelnames=("model",))
        fam.labels(model="a").inc(2)
        fam.labels(model="b").inc(3)
        snap = reg.snapshot()
        assert snap.value("reqs_total", model="a") == 2.0
        assert snap.value("reqs_total", model="b") == 3.0

    def test_wrong_labelset_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("reqs_total", labelnames=("model",))
        with pytest.raises(ModelError, match="takes labels"):
            fam.labels(nope="x")

    def test_missing_sample_raises_not_zero(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", labelnames=("model",))
        snap = reg.snapshot()
        with pytest.raises(ModelError, match="no sample"):
            snap.value("reqs_total", model="ghost")
        assert snap.get("reqs_total", default=-1.0, model="ghost") == -1.0


class TestHistogram:
    def test_bucket_boundaries_le_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        # Exactly on a bound counts into that bound's bucket.
        for value in (0.5, 1.0, 2.0, 3.0, 4.0, 99.0):
            h.observe(value)
        hist = reg.snapshot().value("lat")
        assert isinstance(hist, HistogramValue)
        assert hist.counts == (2, 1, 2, 1)     # (<=1, <=2, <=4, +Inf)
        assert hist.cumulative == (2, 3, 5, 6)
        assert hist.count == 6
        assert hist.sum == pytest.approx(0.5 + 1 + 2 + 3 + 4 + 99)

    def test_default_buckets_are_the_latency_ladder(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(0.5)
        assert reg.snapshot().value("lat").buckets == LATENCY_BUCKETS_S

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ModelError, match="ascending"):
            reg.histogram("lat", buckets=(2.0, 1.0))

    def test_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ModelError, match="already registered"):
            reg.histogram("lat", buckets=(1.0, 3.0))


class TestCollectors:
    def test_collector_sampled_per_snapshot(self):
        reg = MetricsRegistry()
        state = {"n": 1}

        def collect(buffer):
            buffer.gauge("component_n", state["n"])
            buffer.counter("component_events_total", state["n"] * 10)

        reg.register_collector(collect)
        assert reg.snapshot().value("component_n") == 1.0
        state["n"] = 7
        snap = reg.snapshot()
        assert snap.value("component_n") == 7.0
        assert snap.value("component_events_total") == 70.0

    def test_unregister(self):
        reg = MetricsRegistry()

        def collect(buffer):
            buffer.gauge("x", 1)

        reg.register_collector(collect)
        reg.unregister_collector(collect)
        assert reg.snapshot().samples == ()

    def test_bound_method_collector_does_not_pin_component(self):
        reg = MetricsRegistry()

        class Component:
            def collect(self, buffer):
                buffer.gauge("alive", 1)

        component = Component()
        reg.register_collector(component.collect)
        assert reg.snapshot().value("alive") == 1.0
        del component
        gc.collect()
        # The dead weakref is pruned; sampling just stops.
        assert reg.snapshot().samples == ()

    def test_collector_may_mutate_instruments(self):
        # A collector that calls inc() (component holding its own lock
        # around registry calls) must not deadlock: collectors run
        # outside the registry lock.
        reg = MetricsRegistry()
        c = reg.counter("side_total")

        def collect(buffer):
            c.inc()
            buffer.gauge("x", 1)

        reg.register_collector(collect)
        reg.snapshot()
        assert reg.snapshot().value("side_total") >= 1.0


class TestDisabled:
    def test_disabled_registry_hands_out_shared_noops(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NOOP_INSTRUMENT
        assert reg.gauge("b") is NOOP_INSTRUMENT
        assert reg.histogram("c") is NOOP_INSTRUMENT
        assert reg.counter("a").labels(x="y") is NOOP_INSTRUMENT
        reg.counter("a").inc()
        reg.histogram("c").observe(1.0)
        assert reg.snapshot().samples == ()

    def test_disabled_registry_ignores_collectors(self):
        # NULL_TELEMETRY is module-level: registrations must not
        # accumulate references across the process lifetime.
        reg = MetricsRegistry(enabled=False)
        reg.register_collector(lambda buffer: buffer.gauge("x", 1))
        assert reg._collectors == []

    def test_null_telemetry_is_disabled(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.snapshot().samples == ()
        assert NULL_TELEMETRY.prometheus() == "\n"

    def test_as_telemetry_coercions(self):
        assert as_telemetry(None) is NULL_TELEMETRY
        assert as_telemetry(False) is NULL_TELEMETRY
        fresh = as_telemetry(True)
        assert fresh.enabled and fresh is not NULL_TELEMETRY
        tel = Telemetry()
        assert as_telemetry(tel) is tel
        with pytest.raises(TypeError, match="telemetry must be"):
            as_telemetry("yes")


class TestThreadSafety:
    def test_concurrent_increments_are_lossless(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        h = reg.histogram("lat", buckets=(0.5, 1.0))
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def work():
            barrier.wait()
            for i in range(per_thread):
                c.inc()
                h.observe((i % 3) * 0.5)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        snap = reg.snapshot()
        assert snap.value("n_total") == threads * per_thread
        hist = snap.value("lat")
        assert hist.count == threads * per_thread
        assert sum(hist.counts) == hist.count

    def test_snapshot_under_writer_fire_is_consistent(self):
        # Two counters incremented in lockstep by writers; every
        # snapshot (one locked cut) must see them equal.
        reg = MetricsRegistry()
        a = reg.counter("a_total")
        b = reg.counter("b_total")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                with reg._lock:
                    a._cell().value += 1
                    b._cell().value += 1

        pool = [threading.Thread(target=writer) for _ in range(4)]
        for t in pool:
            t.start()
        try:
            for _ in range(200):
                snap = reg.snapshot()
                assert snap.get("a_total") == snap.get("b_total")
        finally:
            stop.set()
            for t in pool:
                t.join()
