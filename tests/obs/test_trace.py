"""Span/Tracer: lifecycle, thread-local propagation, exceptions,
ring-buffer retention, slow-trace exemplars, disabled mode."""

import threading

import pytest

from repro.obs import NOOP_SPAN, Span, Tracer, current_span
from repro.obs.trace import NULL_TRACER


class TestSpanLifecycle:
    def test_root_becomes_current_and_restores(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.trace("root") as root:
            assert current_span() is root
            with root.child("inner") as inner:
                assert current_span() is inner
            assert current_span() is root
        assert current_span() is None

    def test_tree_shape_and_attrs(self):
        tracer = Tracer()
        with tracer.trace("root", model="m") as root:
            with root.child("a", dimension=0):
                pass
            with root.child("b") as b:
                b.set("strategy", "factorized")
                b.add("cache.hits", 3)
                b.add("cache.hits", 2)
        [finished] = tracer.recent()
        assert finished is root
        assert [c.name for c in finished.children] == ["a", "b"]
        assert finished.attrs == {"model": "m"}
        b = finished.find("b")
        assert b.attrs["strategy"] == "factorized"
        assert b.counts == {"cache.hits": 5.0}
        assert finished.find("ghost") is None

    def test_record_attaches_pre_measured_child(self):
        tracer = Tracer()
        with tracer.trace("root") as root:
            root.record("queue.wait", 10.0, 10.25)
        wait = tracer.recent()[0].find("queue.wait")
        assert wait.start == 10.0
        assert wait.duration_s == pytest.approx(0.25)

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.trace("root") as root:
            with root.child("inner"):
                pass
        finished = tracer.recent()[0]
        inner = finished.children[0]
        assert finished.end is not None and inner.end is not None
        assert inner.start >= finished.start
        assert inner.duration_s <= finished.duration_s

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.trace("root") as root:
                with root.child("inner"):
                    raise ValueError("boom")
        finished = tracer.recent()[0]
        assert finished.attrs["error"] == "ValueError: boom"
        assert finished.find("inner").attrs["error"] == "ValueError: boom"
        # The thread-local was restored despite the raise.
        assert current_span() is None

    def test_to_dict_round_trips_structure(self):
        tracer = Tracer()
        with tracer.trace("root", rows=8) as root:
            with root.child("inner") as inner:
                inner.add("pages.read", 2)
        data = tracer.to_dicts()[0]
        assert data["name"] == "root"
        assert data["attrs"] == {"rows": 8}
        assert data["children"][0]["counts"] == {"pages.read": 2.0}
        assert data["duration_s"] >= 0


class TestPropagation:
    def test_thread_local_isolation(self):
        tracer = Tracer()
        seen = {}

        def other_thread():
            seen["span"] = current_span()

        with tracer.trace("root"):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert seen["span"] is None


class TestRetention:
    def test_recent_ring_is_bounded(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            with tracer.trace(f"r{i}"):
                pass
        assert [s.name for s in tracer.recent()] == ["r7", "r8", "r9"]
        assert tracer.finished == 10

    def test_slow_exemplars_survive_ring_churn(self):
        tracer = Tracer(capacity=2, slow_threshold_s=0.5, slow_capacity=4)
        with tracer.trace("slow") as span:
            span.start -= 1.0     # backdate: 1s duration, over threshold
        for i in range(5):
            with tracer.trace(f"fast{i}"):
                pass
        assert "slow" not in [s.name for s in tracer.recent()]
        assert [s.name for s in tracer.slow_traces()] == ["slow"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacities"):
            Tracer(capacity=0)


class TestDisabled:
    def test_disabled_tracer_returns_shared_noop(self):
        assert NULL_TRACER.trace("x") is NOOP_SPAN
        with NULL_TRACER.trace("x") as span:
            assert span is NOOP_SPAN
            # current_span stays None: deep layers keep their no-op path.
            assert current_span() is None
            assert span.child("y") is NOOP_SPAN
            span.add("k")
            span.set("k", 1)
            span.record("k", 0.0, 1.0)
        assert NULL_TRACER.recent() == []
        assert NULL_TRACER.finished == 0

    def test_noop_span_exports_empty(self):
        assert NOOP_SPAN.to_dict() == {}
        assert NOOP_SPAN.find("x") is None
        assert NOOP_SPAN.duration_s == 0.0

    def test_noop_span_does_not_swallow(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.trace("x"):
                raise RuntimeError("through")


class TestStandaloneSpan:
    def test_span_without_tracer_still_nests(self):
        with Span("root") as root:
            with root.child("inner"):
                pass
        assert root.end is not None
        assert current_span() is None
