"""Windowed telemetry: MetricsSnapshot.delta, HistogramValue.quantile,
and the tracer's per-span-name aggregates — the primitives the scenario
harness (repro.scenarios) asserts through."""

import json
import math

import pytest

from repro.errors import ModelError
from repro.obs import Telemetry, Tracer
from repro.obs.metrics import HistogramValue, MetricsRegistry


def registry_with_traffic():
    registry = MetricsRegistry(enabled=True)
    hits = registry.counter("t_hits_total", labelnames=("model",))
    hits.labels(model="a").inc(10)
    hits.labels(model="b").inc(4)
    registry.gauge("t_resident_bytes").set(100.0)
    hist = registry.histogram("t_wait_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    return registry, hits, hist


class TestSnapshotDelta:
    def test_counters_subtract_per_series(self):
        registry, hits, _ = registry_with_traffic()
        earlier = registry.snapshot()
        hits.labels(model="a").inc(7)
        window = registry.snapshot().delta(earlier)
        assert window.value("t_hits_total", model="a") == 7.0
        assert window.value("t_hits_total", model="b") == 0.0

    def test_series_absent_earlier_keeps_full_value(self):
        registry, hits, _ = registry_with_traffic()
        earlier = registry.snapshot()
        hits.labels(model="new").inc(3)
        window = registry.snapshot().delta(earlier)
        assert window.value("t_hits_total", model="new") == 3.0

    def test_gauges_keep_the_later_reading(self):
        registry, _, _ = registry_with_traffic()
        earlier = registry.snapshot()
        registry.gauge("t_resident_bytes").set(42.0)
        window = registry.snapshot().delta(earlier)
        # A gauge describes an instant, not a window: no subtraction.
        assert window.value("t_resident_bytes") == 42.0

    def test_series_only_in_earlier_is_omitted(self):
        registry, _, _ = registry_with_traffic()
        earlier = registry.snapshot()
        fresh = MetricsRegistry(enabled=True)
        fresh.counter("t_other_total").inc()
        window = fresh.snapshot().delta(earlier)
        assert window.family("t_hits_total") == []
        assert window.value("t_other_total") == 1.0

    def test_swapped_arguments_raise(self):
        registry, hits, _ = registry_with_traffic()
        earlier = registry.snapshot()
        hits.labels(model="a").inc(5)
        later = registry.snapshot()
        with pytest.raises(ModelError, match="decreased"):
            earlier.delta(later)

    def test_histogram_delta_windows_the_quantile(self):
        registry, _, hist = registry_with_traffic()
        earlier = registry.snapshot()
        # Only this window's observations land in the +Inf bucket.
        hist.observe(5.0)
        window = registry.snapshot().delta(earlier)
        value = window.value("t_wait_seconds")
        assert value.count == 1
        assert value.quantile(0.5) == 1.0  # clamped to last finite bound

    def test_histogram_ladder_mismatch_raises(self):
        a = MetricsRegistry(enabled=True)
        a.histogram("t_h_seconds", buckets=(0.1, 1.0)).observe(0.05)
        b = MetricsRegistry(enabled=True)
        b.histogram("t_h_seconds", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ModelError, match="bucket ladders"):
            b.snapshot().delta(a.snapshot())


class TestHistogramQuantile:
    def test_linear_interpolation_inside_bucket(self):
        value = HistogramValue(
            buckets=(1.0, 2.0), counts=(2, 2, 0), sum=5.0, count=4
        )
        assert value.quantile(0.25) == pytest.approx(0.5)
        assert value.quantile(0.75) == pytest.approx(1.5)

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        value = HistogramValue(
            buckets=(1.0, 2.0), counts=(0, 0, 3), sum=30.0, count=3
        )
        assert value.quantile(0.5) == 2.0

    def test_empty_histogram_is_nan(self):
        value = HistogramValue(
            buckets=(1.0,), counts=(0, 0), sum=0.0, count=0
        )
        assert math.isnan(value.quantile(0.5))

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 2.0])
    def test_q_outside_open_interval_raises(self, q):
        value = HistogramValue(
            buckets=(1.0,), counts=(1, 0), sum=0.5, count=1
        )
        with pytest.raises(ModelError, match="quantile q"):
            value.quantile(q)

    def test_cumulative_ends_at_count(self):
        value = HistogramValue(
            buckets=(1.0, 2.0), counts=(2, 1, 3), sum=12.0, count=6
        )
        assert value.cumulative == (2, 3, 6)


class TestSpanAggregates:
    def test_count_sum_and_quantiles_per_name(self):
        tracer = Tracer()
        for _ in range(4):
            with tracer.trace("serve.batch") as root:
                root.record("queue.wait", 10.0, 10.5)
        aggregates = tracer.span_aggregates()
        assert set(aggregates) == {"serve.batch", "queue.wait"}
        wait = aggregates["queue.wait"]
        assert wait["count"] == 4
        assert wait["sum_s"] == pytest.approx(2.0)
        assert wait["p50_s"] == pytest.approx(0.5)
        assert wait["p95_s"] == pytest.approx(0.5)

    def test_snapshot_json_carries_the_same_spans(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.tracer.trace("serve.batch"):
            pass
        document = json.loads(telemetry.to_json())
        assert document["spans"]["serve.batch"]["count"] == 1
        assert document["spans"] == telemetry.span_aggregates()
