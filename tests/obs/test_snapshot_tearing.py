"""Tear-free stats regression tests.

These hammer a component from writer threads while a reader thread
snapshots it, asserting cross-field invariants that only hold when the
snapshot is a consistent cut — the bugs these catch looked like
impossible stats (hit counts not matching shard traffic, bytes
resident disagreeing with entry counts) in production dumps.
"""

import threading
import time

import numpy as np

from repro.runtime.sharding import ShardedPartialCache
from repro.serve.service import ServingStats
from repro.storage.iostats import IOSnapshot

WIDTH = 2


def rows_for(keys):
    keys = np.asarray(keys, dtype=np.float64)
    return np.column_stack([keys, keys * 10.0])


class TestShardedCacheStats:
    def test_stats_consistent_under_get_many_fire(self):
        shards = 4
        cache = ShardedPartialCache(shards, capacity=64)
        stop = threading.Event()
        failures = []

        keys_per_call = 16

        def writer(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                # Exactly keys_per_call distinct keys per call: each
                # call contributes exactly that many lookups split
                # across the shards it touches.
                keys = rng.choice(256, size=keys_per_call, replace=False)
                cache.get_many(keys, rows_for)

        def reader():
            while not stop.is_set():
                stats = cache.stats()
                # The stats guard waits out every in-flight multi-shard
                # get_many, so a snapshot never splits one call's
                # bookkeeping: total lookups stay a multiple of the
                # per-call key count...
                if (stats.hits + stats.misses) % keys_per_call != 0:
                    failures.append(stats)
                # ...and resident bytes always equal entries × row
                # bytes (8 bytes per float, WIDTH floats per row).
                if stats.bytes_resident != stats.entries * WIDTH * 8:
                    failures.append(stats)

        writers = [
            threading.Thread(target=writer, args=(seed,))
            for seed in range(3)
        ]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        try:
            time.sleep(0.4)
        finally:
            stop.set()
            for thread in writers + readers:
                thread.join()
        assert not failures, f"torn snapshots observed: {failures[:3]}"

    def test_final_totals_add_up(self):
        cache = ShardedPartialCache(4)
        threads = 6
        per_thread = 50
        barrier = threading.Barrier(threads)

        def work(seed):
            barrier.wait()
            rng = np.random.default_rng(seed)
            for _ in range(per_thread):
                cache.get_many(rng.integers(0, 64, size=8), rows_for)

        pool = [
            threading.Thread(target=work, args=(seed,))
            for seed in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        stats = cache.stats()
        # Every requested distinct key was either a hit or a miss.
        assert stats.hits + stats.misses > 0
        assert stats.misses >= stats.entries
        assert stats.bytes_resident == stats.entries * WIDTH * 8


class TestServingStatsSnapshot:
    def test_snapshot_never_tears(self):
        stats = ServingStats()
        rows_per_call = 7
        stop = threading.Event()
        failures = []

        def writer():
            while not stop.is_set():
                stats.record(
                    rows=rows_per_call, seconds=0.001,
                    io=IOSnapshot(pages_read=2),
                )

        def reader():
            while not stop.is_set():
                snap = stats.snapshot()
                if snap.rows != snap.requests * rows_per_call:
                    failures.append((snap.requests, snap.rows))
                if snap.io.pages_read != snap.requests * 2:
                    failures.append((snap.requests, snap.io.pages_read))

        pool = [threading.Thread(target=writer) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in pool:
            t.start()
        try:
            time.sleep(0.3)
        finally:
            stop.set()
            for t in pool:
                t.join()
        assert not failures, f"torn ServingStats reads: {failures[:3]}"

    def test_snapshot_is_a_copy(self):
        stats = ServingStats()
        stats.record(rows=3, seconds=0.5)
        snap = stats.snapshot()
        stats.record(rows=3, seconds=0.5)
        assert snap.requests == 1
        assert stats.snapshot().requests == 2
