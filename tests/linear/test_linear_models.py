"""Factorized linear baselines match dense solutions exactly."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.linear.models import fit_logistic, fit_ridge
from repro.storage.schema import (
    Schema,
    features,
    foreign_key,
    key,
    target,
)


def build_star(db, rng, *, n_s=500, n_r=20, d_s=3, d_r=4,
               targets=None, seed_fk=None):
    r_rows = np.column_stack(
        [np.arange(n_r, dtype=np.float64), rng.normal(size=(n_r, d_r))]
    )
    db.create_relation(
        "R", Schema([key("rid"), *features("a", d_r)]), r_rows
    )
    fks = rng.integers(0, n_r, size=n_s) if seed_fk is None else seed_fk
    fks[:n_r] = np.arange(n_r)
    s_feats = rng.normal(size=(n_s, d_s))
    joined = np.concatenate([s_feats, r_rows[fks, 1:]], axis=1)
    if targets is None:
        true_w = rng.normal(size=d_s + d_r)
        targets = joined @ true_w + 0.5 + rng.normal(
            scale=0.1, size=n_s
        )
    s_rows = np.column_stack(
        [
            np.arange(n_s, dtype=np.float64),
            targets,
            s_feats,
            fks.astype(np.float64),
        ]
    )
    db.create_relation(
        "S",
        Schema(
            [key("sid"), target("y"), *features("x", d_s),
             foreign_key("fk", "R")]
        ),
        s_rows,
    )
    from repro.join.spec import JoinSpec

    return JoinSpec.binary("S", "R"), joined, targets


class TestRidge:
    def test_matches_dense_normal_equations(self, db, rng):
        spec, joined, targets = build_star(db, rng)
        alpha = 1e-2
        model = fit_ridge(db, spec, alpha=alpha)
        centered = joined - joined.mean(axis=0)
        centered_targets = targets - targets.mean()
        expected = np.linalg.solve(
            centered.T @ centered + alpha * np.eye(joined.shape[1]),
            centered.T @ centered_targets,
        )
        np.testing.assert_allclose(model.weights, expected, rtol=1e-8)
        expected_intercept = targets.mean() - joined.mean(axis=0) @ expected
        assert model.intercept == pytest.approx(
            expected_intercept, rel=1e-8
        )

    def test_recovers_generating_weights(self, db, rng):
        spec, joined, targets = build_star(db, rng, n_s=2000)
        model = fit_ridge(db, spec, alpha=1e-8)
        # Noise 0.1 → weights recovered to ~1e-2.
        lstsq = np.linalg.lstsq(
            np.column_stack([joined, np.ones(len(targets))]),
            targets, rcond=None,
        )[0]
        np.testing.assert_allclose(
            model.weights, lstsq[:-1], atol=1e-6
        )

    def test_prediction_quality(self, db, rng):
        spec, joined, targets = build_star(db, rng, n_s=1500)
        model = fit_ridge(db, spec, alpha=1e-6)
        predictions = model.predict(joined)
        residual = np.mean((predictions - targets) ** 2)
        assert residual < 0.05  # noise floor is 0.01

    def test_block_size_invariance(self, db, rng):
        spec, _, _ = build_star(db, rng)
        a = fit_ridge(db, spec, alpha=1e-3, block_pages=1)
        b = fit_ridge(db, spec, alpha=1e-3, block_pages=64)
        np.testing.assert_allclose(a.weights, b.weights, rtol=1e-10)

    def test_requires_target(self, db, rng):
        from repro.join.spec import JoinSpec
        from tests.conftest import make_binary_relations

        spec = make_binary_relations(db, rng, with_target=False,
                                     fact="S2", dim="R2")
        with pytest.raises(ModelError, match="TARGET"):
            fit_ridge(db, spec)

    def test_negative_alpha_rejected(self, db, rng):
        spec, _, _ = build_star(db, rng)
        with pytest.raises(ModelError):
            fit_ridge(db, spec, alpha=-1.0)


class TestLogistic:
    def test_matches_dense_gradient_descent(self, db, rng):
        # Binary labels from a linear rule over joined features.
        n_s = 600
        pre_rng = np.random.default_rng(0)
        spec, joined, targets = build_star(
            db, rng, n_s=n_s,
            targets=(pre_rng.normal(size=n_s) > 0).astype(float),
        )
        epochs, lr = 10, 0.3
        model = fit_logistic(
            db, spec, epochs=epochs, learning_rate=lr
        )
        # Dense replication of the same full-batch GD.
        w = np.zeros(joined.shape[1])
        b = 0.0
        y = targets
        for _ in range(epochs):
            margin = joined @ w + b
            p = 1.0 / (1.0 + np.exp(-margin))
            residual = (p - y) / n_s
            w = w - lr * (joined.T @ residual)
            b -= lr * residual.sum()
        np.testing.assert_allclose(model.weights, w, rtol=1e-8,
                                   atol=1e-12)
        assert model.intercept == pytest.approx(b, rel=1e-8, abs=1e-12)

    def test_learns_separable_labels(self, db, rng):
        n_s = 1500
        helper_rng = np.random.default_rng(3)
        # Build star first with placeholder targets, then labels from
        # the realized joined features.
        spec, joined, _ = build_star(
            db, rng, n_s=n_s,
            targets=np.zeros(n_s),
        )
        rule = joined @ np.ones(joined.shape[1]) > 0
        db.drop_relation("S")
        s_feats = joined[:, :3]
        fks_back = db["R"].keys()
        # Rebuild S with the rule labels (same features/fks as before
        # is unnecessary — regenerate cleanly instead).
        db.drop_relation("R")
        rng2 = np.random.default_rng(77)
        spec, joined, _ = build_star(
            db, rng2, n_s=n_s, targets=None
        )
        labels = (joined @ np.ones(joined.shape[1]) > 0).astype(float)
        # Overwrite the target column by rebuilding S.
        s_rows = db["S"].scan()
        s_rows[:, db["S"].schema.target_position] = labels
        db.drop_relation("S")
        db.create_relation(
            "S",
            Schema(
                [key("sid"), target("y"), *features("x", 3),
                 foreign_key("fk", "R")]
            ),
            s_rows,
        )
        model = fit_logistic(
            db, spec, epochs=60, learning_rate=2.0
        )
        accuracy = (
            (model.predict_proba(joined) > 0.5) == labels
        ).mean()
        assert accuracy > 0.95

    def test_loss_decreases(self, db, rng):
        n_s = 400
        label_rng = np.random.default_rng(5)
        spec, joined, _ = build_star(
            db, rng, n_s=n_s,
            targets=(label_rng.uniform(size=n_s) > 0.5).astype(float),
        )
        model = fit_logistic(db, spec, epochs=15, learning_rate=0.5)
        losses = model.extra["loss_history"]
        assert losses[-1] <= losses[0]

    def test_validation(self, db, rng):
        spec, _, _ = build_star(db, rng)
        with pytest.raises(ModelError):
            fit_logistic(db, spec, epochs=0)
        with pytest.raises(ModelError):
            fit_logistic(db, spec, learning_rate=0)
