#!/usr/bin/env python3
"""Execute the ```python code fences of a markdown document.

The docs CI job runs this over ``docs/tuning.md`` so the tuning
guide's snippets cannot rot: every ```python fence is executed, in
order, in one shared namespace per file (later fences may build on
earlier ones, the way a reader follows the document).  Fences tagged
anything other than ``python`` (```text, ```bash, plain ```) are
skipped — use them for output samples and shell lines.

Snippets are expected to be tiny-scale (seconds, not minutes): the CI
job exports ``REPRO_EXAMPLE_SCALE=tiny`` like the examples job, and
documents should size their inline workloads accordingly.

Run locally:  PYTHONPATH=src python tools/run_doc_fences.py docs/tuning.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def run_file(path: Path) -> int:
    text = path.read_text(encoding="utf-8")
    fences = [match.group(1) for match in FENCE.finditer(text)]
    if not fences:
        print(f"{path}: no ```python fences found")
        return 0
    namespace: dict = {"__name__": f"docfence:{path.name}"}
    for index, source in enumerate(fences, start=1):
        line_no = text[: text.index(source)].count("\n") + 1
        print(f"== {path}: fence {index}/{len(fences)} (line {line_no})")
        try:
            exec(compile(source, f"{path}#fence{index}", "exec"), namespace)
        except Exception:
            print(
                f"{path}: fence {index} (line {line_no}) failed",
                file=sys.stderr,
            )
            raise
    print(f"{path}: {len(fences)} fence(s) OK")
    return 0


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: run_doc_fences.py DOC.md [DOC.md ...]", file=sys.stderr)
        return 2
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"missing document: {path}", file=sys.stderr)
            return 1
        run_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
