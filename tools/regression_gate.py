#!/usr/bin/env python
"""Fail CI when a fresh bench run regresses against its history.

Compares the machine-readable payloads a bench run just wrote to
``benchmarks/results/`` against the committed ``BENCH_*.json``
histories, through the same per-bench flatteners
``tools/bench_summary.py`` uses to summarize them — the gate and the
dashboard literally cannot disagree about what a metric means.

For every metric key the baseline is the **median of the last K
retained history runs** (the fresh run's own ``generated_at`` stamp is
excluded, so gating after summarizing is not self-comparison).  A key
gates only if its direction is known:

* *lower is better* — wall/latency seconds (``*_s``, ``*seconds``,
  ``*p95*``), the telemetry overhead ``ratio``;
* *higher is better* — ``*rows_per_sec``, ``*hit_rate``,
  ``*speedup``;
* anything else (byte footprints, eviction counts, config echoes) is
  informational and never gates.

A regression is a lower-is-better metric exceeding ``max(baseline ×
(1 + tolerance), --floor)`` or a higher-is-better metric falling
below ``baseline × (1 - tolerance)``.  The absolute floor exists for
timers near clock resolution: a 200µs queue-wait median can jitter
10× between nightly runs without meaning anything, so values under
the floor never regress no matter the ratio.  The default tolerance
is generous (nightly CI runners are noisy); tighten or loosen per
metric with repeatable
``--override 'GLOB=TOL'`` flags, matched with :mod:`fnmatch` against
``<history>.<key>`` (first match wins)::

    python tools/regression_gate.py \
        --tolerance 0.5 \
        --override 'BENCH_overhead.json.ratio=0.10' \
        --override 'BENCH_scenarios.json.*queue_wait*=1.0'

Histories with fewer than ``--min-runs`` baseline runs pass with a
note — a new bench must be allowed to accumulate history before it
can fail anyone.  Exit code: 0 clean, 1 on any regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatch
from pathlib import Path
from statistics import median

TOOLS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TOOLS_DIR.parent

sys.path.insert(0, str(TOOLS_DIR))

from bench_summary import BENCHES, SCHEMA_VERSION  # noqa: E402

LOWER_IS_BETTER = ("*_s", "*seconds*", "*p95*", "ratio", "*.ratio")
HIGHER_IS_BETTER = ("*rows_per_sec*", "*hit_rate*", "*speedup*")


def direction(key: str) -> str | None:
    """'lower' | 'higher' | None (informational, never gates)."""
    # Throughput/ratio names also end in suffixes the lower-is-better
    # globs match (``hit_rate`` vs ``*_s``? no — but ``rows_per_sec``
    # contains no ``_s`` suffix match), so check higher-is-better
    # first: its patterns are the more specific ones.
    if any(fnmatch(key, pattern) for pattern in HIGHER_IS_BETTER):
        return "higher"
    if any(fnmatch(key, pattern) for pattern in LOWER_IS_BETTER):
        return "lower"
    return None


def parse_override(text: str) -> tuple[str, float]:
    pattern, _, value = text.rpartition("=")
    if not pattern:
        raise argparse.ArgumentTypeError(
            f"--override must look like 'GLOB=TOL', got {text!r}"
        )
    try:
        tolerance = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"tolerance in {text!r} is not a number"
        ) from None
    if tolerance < 0:
        raise argparse.ArgumentTypeError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    return pattern, tolerance


def tolerance_for(
    qualified: str, overrides: list[tuple[str, float]], default: float
) -> float:
    for pattern, tolerance in overrides:
        if fnmatch(qualified, pattern):
            return tolerance
    return default


def _load(path: Path):
    if not path.exists():
        return None
    with open(path) as handle:
        return json.load(handle)


def gate_one(
    fresh: dict,
    history: dict,
    flatten,
    history_name: str,
    *,
    min_runs: int,
    default_tolerance: float,
    floor: float,
    overrides: list[tuple[str, float]],
    report: list[str],
) -> int:
    """Gate one bench; returns the number of regressions found."""
    stamp = fresh.get("generated_at")
    baseline_runs = [
        run
        for run in history.get("runs", [])
        if run.get("generated_at") != stamp
    ]
    if len(baseline_runs) < min_runs:
        report.append(
            f"  {history_name}: only {len(baseline_runs)} baseline "
            f"run(s) (< {min_runs}); accumulating history, not gating"
        )
        return 0

    flat_fresh = flatten(fresh)
    flat_runs = [flatten(run) for run in baseline_runs]
    regressions = 0
    gated = 0
    for key in sorted(flat_fresh):
        sense = direction(key)
        if sense is None:
            continue
        base_values = [run[key] for run in flat_runs if key in run]
        if not base_values:
            continue
        baseline = median(base_values)
        value = flat_fresh[key]
        qualified = f"{history_name}.{key}"
        tolerance = tolerance_for(qualified, overrides, default_tolerance)
        gated += 1
        if baseline == 0:
            # Degenerate baseline (e.g. a timer below resolution):
            # nothing meaningful to scale a tolerance by.
            continue
        if sense == "lower":
            bound = max(baseline * (1 + tolerance), floor)
            bad = value > bound
            relation = f"{value:.6g} > {bound:.6g}"
        else:
            bound = baseline * (1 - tolerance)
            bad = value < bound
            relation = f"{value:.6g} < {bound:.6g}"
        if bad:
            regressions += 1
            report.append(
                f"  REGRESSION {qualified}: {relation} "
                f"(baseline median {baseline:.6g} over "
                f"{len(base_values)} run(s), tolerance "
                f"{tolerance:.0%}, {sense} is better)"
            )
    report.append(
        f"  {history_name}: {gated} metric(s) gated against "
        f"{len(baseline_runs)} baseline run(s), "
        f"{regressions} regression(s)"
    )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate fresh bench results against BENCH_*.json "
        "histories"
    )
    parser.add_argument(
        "--results-dir", type=Path,
        default=REPO_ROOT / "benchmarks" / "results",
        help="where the bench suite wrote its machine-readable results",
    )
    parser.add_argument(
        "--histories-dir", type=Path, default=REPO_ROOT,
        help="where the BENCH_*.json histories live (default: repo root)",
    )
    parser.add_argument(
        "--min-runs", type=int, default=3,
        help="baseline runs required before a history can gate",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="default allowed relative drift (0.5 = 50%%)",
    )
    parser.add_argument(
        "--floor", type=float, default=0.01,
        help="absolute lower-is-better bound floor (seconds-scale "
        "metrics under this never regress; default 0.01)",
    )
    parser.add_argument(
        "--override", type=parse_override, action="append", default=[],
        metavar="GLOB=TOL",
        help="per-metric tolerance, matched against "
        "'<history>.<key>' (repeatable, first match wins)",
    )
    args = parser.parse_args(argv)

    report: list[str] = ["regression_gate:"]
    total = 0
    seen_any = False
    for raw_name, history_name, flatten in BENCHES:
        fresh = _load(args.results_dir / raw_name)
        if fresh is None:
            report.append(f"  {history_name}: no fresh {raw_name}; skipped")
            continue
        history = _load(args.histories_dir / history_name)
        if history is None:
            report.append(
                f"  {history_name}: no committed history; not gating"
            )
            continue
        if history.get("schema_version") != SCHEMA_VERSION:
            report.append(
                f"  {history_name}: unknown schema_version "
                f"{history.get('schema_version')!r}; refusing to gate"
            )
            total += 1
            continue
        seen_any = True
        total += gate_one(
            fresh, history, flatten, history_name,
            min_runs=args.min_runs,
            default_tolerance=args.tolerance,
            floor=args.floor,
            overrides=args.override,
            report=report,
        )
    if not seen_any:
        report.append("  nothing to gate (no fresh results with history)")
    verdict = "FAIL" if total else "ok"
    report.append(f"regression_gate: {verdict} ({total} regression(s))")
    print("\n".join(report))
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
