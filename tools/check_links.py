#!/usr/bin/env python3
"""Verify internal links in the repo's markdown docs.

Scans README.md and docs/*.md for markdown links.  External links
(http/https/mailto) are ignored; relative links must point at an
existing file or directory, and fragment links (``file.md#anchor`` or
``#anchor``) must match a heading in the target document using
GitHub's slug rules (lowercase, punctuation stripped, spaces to
hyphens).  Exits non-zero listing every broken link — the docs CI job
runs this on every push so the docs cannot rot.

Run locally:  python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", *sorted(
    (REPO_ROOT / "docs").glob("*.md")
)]

LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    heading = heading.strip().lower().replace("`", "")
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in HEADING.finditer(text)}


def check_file(path: Path) -> list[str]:
    errors = []
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if not resolved.exists():
            errors.append(f"{path.name}: broken link -> {target}")
            continue
        if fragment:
            if resolved.is_dir() or resolved.suffix != ".md":
                errors.append(
                    f"{path.name}: fragment on non-markdown -> {target}"
                )
            elif github_slug(fragment) not in anchors_of(resolved):
                errors.append(
                    f"{path.name}: missing anchor -> {target}"
                )
    return errors


def main() -> int:
    missing = [p for p in DOC_FILES if not p.exists()]
    if missing:
        for path in missing:
            print(f"missing doc file: {path.relative_to(REPO_ROOT)}")
        return 1
    errors = [e for path in DOC_FILES for e in check_file(path)]
    for error in errors:
        print(error)
    checked = ", ".join(p.name for p in DOC_FILES)
    if errors:
        print(f"\n{len(errors)} broken link(s) across {checked}")
        return 1
    print(f"all internal links OK in {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
