#!/usr/bin/env python
"""Fold one benchmark run into the checked-in BENCH_*.json histories.

The nightly bench job (``.github/workflows/nightly-bench.yml``) runs
the suite at the ``tiny`` preset, which drops machine-readable result
files into ``benchmarks/results/``.  This script appends those raw
runs to stable-schema history files at the repo root:

* ``BENCH_serving.json``   — serving throughput per tuple ratio;
* ``BENCH_memory.json``    — budgeted-serving residency and wall time;
* ``BENCH_runtime.json``   — runtime scaling rows/sec per config;
* ``BENCH_cache.json``     — cross-model sharing footprint;
* ``BENCH_overhead.json``  — telemetry on/off wall-time ratio;
* ``BENCH_maintenance.json`` — delta-apply vs full-refit wall time
  per update rate;
* ``BENCH_scenarios.json`` — scenario-suite medians per scenario.

Each history keeps the raw per-run records (most recent last, capped
at ``--keep``) plus a ``summary`` block of medians over the retained
runs, so a dashboard — or a reviewer diffing the PR — reads one number
per metric without re-deriving statistics.  The schema is versioned;
consumers should refuse ``schema_version`` values they do not know.

The per-bench ``flatten_*`` functions map one raw run to a flat
``{metric_key: float}`` dict; they are module-level so
``tools/regression_gate.py`` compares fresh runs against history
medians through the exact same lens this summary reports.

Usage (what the nightly job runs)::

    python tools/bench_summary.py
    python tools/bench_summary.py --results-dir benchmarks/results \
        --out-dir . --keep 30

Idempotency: a run is identified by its ``generated_at`` stamp; re-
summarizing the same results directory twice appends nothing new.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from statistics import median

SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(path: Path):
    if not path.exists():
        return None
    with open(path) as handle:
        return json.load(handle)


def _fresh_history(name: str) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "runs": [],
        "summary": {},
    }


def _append_run(history: dict, run: dict, keep: int) -> bool:
    """Append ``run`` unless its stamp is already recorded."""
    stamps = {r.get("generated_at") for r in history["runs"]}
    if run.get("generated_at") in stamps:
        return False
    history["runs"].append(run)
    history["runs"] = history["runs"][-keep:]
    return True


def _median_over(runs, pick) -> dict:
    """Median of every numeric leaf ``pick`` extracts from each run."""
    rows = [pick(run) for run in runs]
    keys = sorted({k for row in rows for k in row})
    return {
        key: round(median(row[key] for row in rows if key in row), 6)
        for key in keys
    }


# -- per-bench flatteners (one raw run → {metric_key: float}) -----------------


def flatten_serving(run: dict) -> dict:
    """Per tuple ratio: wall seconds per arm."""
    flat = {}
    for row in run.get("rows", []):
        rr = row["rr"]
        for field in (
            "gmm_m_s", "gmm_f_s", "nn_m_s", "nn_f_s", "nn_f_warm_s"
        ):
            flat[f"rr{rr}.{field}"] = float(row[field])
    return flat


def flatten_memory(run: dict) -> dict:
    """Residency/eviction/wall metrics per arm."""
    flat = {}
    for arm_name, arm in run.get("arms", {}).items():
        for field in (
            "peak_bytes", "bytes", "cross_evictions",
            "hit_rate", "seconds", "rows_per_sec",
        ):
            if field in arm:
                flat[f"{arm_name}.{field}"] = float(arm[field])
    return flat


def flatten_degradation(run: dict) -> dict:
    """Per-tier acquisition throughput plus the spill-vs-recompute
    ratio (``*speedup*`` and ``*rows_per_sec*`` both gate
    higher-is-better in tools/regression_gate.py)."""
    flat = {}
    for tier, point in run.get("tiers", {}).items():
        if "rows_per_sec" in point:
            flat[f"tier.{tier}.rows_per_sec"] = float(
                point["rows_per_sec"]
            )
    if "spill_speedup_vs_recompute" in run:
        flat["spill_speedup_vs_recompute"] = float(
            run["spill_speedup_vs_recompute"]
        )
    return flat


def flatten_runtime(run: dict) -> dict:
    """Baseline plus rows/sec and speedup per (executor, workers,
    batch) config.  Runs recorded before the executor dimension
    existed carry no ``executor`` key and keep their legacy
    ``w{N}.b{M}`` metric names, so old history rows still line up."""
    flat = {}
    if "baseline_rows_per_sec" in run:
        flat["baseline_rows_per_sec"] = float(run["baseline_rows_per_sec"])
    for config in run.get("configs", []):
        prefix = f"w{config['workers']}.b{config['batch_rows']}"
        if "executor" in config:
            prefix = f"{config['executor']}.{prefix}"
        flat[f"{prefix}.rows_per_sec"] = float(config["rows_per_sec"])
        flat[f"{prefix}.speedup"] = float(config["speedup"])
    if run.get("process_scaling_speedup_4w"):
        flat["process.scaling_speedup_4w"] = float(
            run["process_scaling_speedup_4w"]
        )
    return flat


def flatten_cache(run: dict) -> dict:
    """Footprint/hit-rate/wall metrics per sharing arm."""
    flat = {}
    for arm_name, arm in run.get("arms", {}).items():
        for field in ("bytes", "hit_rate", "seconds", "caches"):
            if field in arm:
                flat[f"{arm_name}.{field}"] = float(arm[field])
    return flat


def flatten_overhead(run: dict) -> dict:
    """Telemetry A/B wall times and their ratio."""
    return {
        key: float(run[key])
        for key in ("off_s", "on_s", "ratio")
        if key in run
    }


def flatten_maintenance(run: dict) -> dict:
    """Per update rate: delta/refit wall seconds and their ratio,
    plus the headline smallest-rate ``delta_speedup`` (``*speedup*``
    gates higher-is-better in tools/regression_gate.py)."""
    flat = {}
    for rate_key, point in run.get("rates", {}).items():
        for field in ("delta_s", "refit_s", "speedup"):
            if field in point:
                flat[f"{rate_key}.{field}"] = float(point[field])
    if "delta_speedup" in run:
        flat["delta_speedup"] = float(run["delta_speedup"])
    return flat


def flatten_scenarios(run: dict) -> dict:
    """Cross-trial medians per scenario, keyed ``<scenario>.<metric>``."""
    flat = {}
    for entry in run.get("scenarios", []):
        name = entry.get("scenario", "?")
        for key, stats in entry.get("summary", {}).items():
            if isinstance(stats, dict) and "median" in stats:
                flat[f"{name}.{key}"] = float(stats["median"])
    return flat


def _summarize(history: dict, flatten) -> None:
    history["summary"] = {
        "runs": len(history["runs"]),
        "median": _median_over(history["runs"], flatten),
    }


BENCHES = (
    # (raw results file, history file, flattener)
    ("serving_throughput.json", "BENCH_serving.json", flatten_serving),
    ("memory_pressure.json", "BENCH_memory.json", flatten_memory),
    ("memory_degradation.json", "BENCH_degradation.json",
     flatten_degradation),
    ("runtime_scaling.json", "BENCH_runtime.json", flatten_runtime),
    ("shared_cache.json", "BENCH_cache.json", flatten_cache),
    ("telemetry_overhead.json", "BENCH_overhead.json", flatten_overhead),
    ("maintenance.json", "BENCH_maintenance.json", flatten_maintenance),
    ("scenarios.json", "BENCH_scenarios.json", flatten_scenarios),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Append benchmark results to BENCH_*.json histories"
    )
    parser.add_argument(
        "--results-dir", type=Path,
        default=REPO_ROOT / "benchmarks" / "results",
        help="where the bench suite wrote its machine-readable results",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=REPO_ROOT,
        help="where the BENCH_*.json histories live (default: repo root)",
    )
    parser.add_argument(
        "--keep", type=int, default=30,
        help="retain at most this many raw runs per history",
    )
    args = parser.parse_args(argv)

    changed = 0
    for raw_name, history_name, flatten in BENCHES:
        raw = _load(args.results_dir / raw_name)
        if raw is None:
            print(f"bench_summary: no {raw_name}; skipping", file=sys.stderr)
            continue
        history_path = args.out_dir / history_name
        history = _load(history_path) or _fresh_history(raw.get("bench", ""))
        if history.get("schema_version") != SCHEMA_VERSION:
            print(
                f"bench_summary: {history_name} has schema_version "
                f"{history.get('schema_version')!r}, expected "
                f"{SCHEMA_VERSION}; refusing to rewrite it",
                file=sys.stderr,
            )
            return 1
        appended = _append_run(history, raw, args.keep)
        _summarize(history, flatten)
        with open(history_path, "w") as handle:
            json.dump(history, handle, indent=2, sort_keys=True)
            handle.write("\n")
        state = "appended" if appended else "already recorded"
        print(
            f"bench_summary: {history_name}: {state}, "
            f"{len(history['runs'])} run(s) retained"
        )
        changed += int(appended)
    return 0


if __name__ == "__main__":
    sys.exit(main())
